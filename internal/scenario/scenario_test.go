package scenario

import (
	"sort"
	"testing"
	"time"

	"crossborder/internal/browser"
	"crossborder/internal/core"
	"crossborder/internal/geodata"
)

// small builds a fast scenario shared across tests in this package.
var smallCache *Scenario

func small(t *testing.T) *Scenario {
	t.Helper()
	if smallCache == nil {
		smallCache = Build(Params{Seed: 1, Scale: 0.05, VisitsPerUser: 40})
	}
	return smallCache
}

func TestBuildWiring(t *testing.T) {
	s := small(t)
	if s.Graph == nil || s.World == nil || s.DNS == nil || s.PDNS == nil {
		t.Fatal("missing substrate")
	}
	if len(s.Users) == 0 || s.Dataset == nil || s.Dataset.Len() == 0 {
		t.Fatal("no dataset")
	}
	if s.Inventory == nil || s.Inventory.NumIPs() == 0 {
		t.Fatal("no tracker inventory")
	}
	if s.Identification == nil || s.Identification.Identified() == 0 {
		t.Fatal("no sensitive identification")
	}
}

func TestEveryServiceFQDNResolvable(t *testing.T) {
	s := small(t)
	zones := make(map[string]bool)
	for _, z := range s.DNS.Zones() {
		zones[z] = true
	}
	missing := 0
	for _, svc := range s.Graph.Services {
		for _, f := range svc.FQDNs {
			if !zones[f] {
				missing++
			}
		}
	}
	if missing > 0 {
		t.Errorf("%d FQDNs without DNS zones", missing)
	}
}

func TestZoneIPsBelongToOwnersDeployments(t *testing.T) {
	s := small(t)
	checked := 0
	for _, svc := range s.Graph.Services {
		if checked > 300 {
			break
		}
		for _, f := range svc.FQDNs {
			for _, sv := range s.DNS.Servers(f) {
				dep, ok := s.World.LocateIP(sv.IP)
				if !ok {
					t.Fatalf("zone %s server %s not in world", f, sv.IP)
				}
				if dep.Country != sv.Country {
					t.Fatalf("zone %s server %s country %s != deployment %s",
						f, sv.IP, sv.Country, dep.Country)
				}
			}
			checked++
		}
	}
}

func TestTrackerInventoryHasExtras(t *testing.T) {
	s := small(t)
	if s.Inventory.NumExtra() == 0 {
		t.Error("pDNS completion found no extra IPs; the +2.78% mechanism is dead")
	}
	frac := float64(s.Inventory.NumExtra()) / float64(s.Inventory.NumIPs())
	if frac > 0.25 {
		t.Errorf("extra IP fraction = %.3f; too many unobserved addresses", frac)
	}
}

func TestSharedInfraExists(t *testing.T) {
	s := small(t)
	shared := s.Inventory.SharedIPs(5)
	if len(shared) == 0 {
		t.Error("no shared cookie-sync IPs (Fig 5 population missing)")
	}
}

func TestDeterminism(t *testing.T) {
	a := Build(Params{Seed: 3, Scale: 0.02, VisitsPerUser: 10})
	b := Build(Params{Seed: 3, Scale: 0.02, VisitsPerUser: 10})
	ar, br := a.Dataset.Rows(), b.Dataset.Rows()
	if len(ar) != len(br) {
		t.Fatalf("row counts differ: %d vs %d", len(ar), len(br))
	}
	for i := range ar {
		if ar[i] != br[i] {
			t.Fatalf("row %d differs", i)
		}
	}
	if a.Inventory.NumIPs() != b.Inventory.NumIPs() {
		t.Error("inventories differ")
	}
}

func TestEU28ConfinementShape(t *testing.T) {
	// The headline result must hold even at small scale: under accurate
	// geolocation most EU28 tracking flows stay in EU28, and the US
	// share is minor; under MaxMind the picture flips toward the US.
	s := small(t)
	truthA := core.Analyze(s.Dataset, s.Truth, nil)
	_, inEU, inEur, flows := truthA.RegionConfinement(core.EU28Origin)
	if flows == 0 {
		t.Fatal("no EU28 flows")
	}
	if inEU < 70 || inEU > 95 {
		t.Errorf("truth EU28 confinement = %.1f%%, want ~85%% (Fig 7b)", inEU)
	}
	if inEur < inEU {
		t.Error("Europe confinement below EU28 confinement")
	}

	mmA := core.Analyze(s.Dataset, s.MaxMind, nil)
	_, mmEU, _, _ := mmA.RegionConfinement(core.EU28Origin)
	if mmEU >= inEU-15 {
		t.Errorf("MaxMind EU28 confinement = %.1f%% vs truth %.1f%%; the Fig 7 flip is missing", mmEU, inEU)
	}
}

func TestTrackingShare(t *testing.T) {
	s := small(t)
	share := s.TrackingShareOfRows()
	if share < 0.45 || share > 0.8 {
		t.Errorf("tracking share = %.3f, want ~0.61 (Table 1/2)", share)
	}
}

func TestFQDNWeights(t *testing.T) {
	s := small(t)
	ws := s.FQDNWeights()
	if len(ws) == 0 {
		t.Fatal("no weights")
	}
	for _, w := range ws[:min(50, len(ws))] {
		if w.Weight <= 0 || w.FQDN == "" {
			t.Fatalf("bad weight %+v", w)
		}
	}
	// The order is canonical (sorted by FQDN): the ISP synthesizer
	// samples positionally, so any dataset holding the same rows — batch
	// or cluster-merged — must hand it the same slice.
	if !sort.SliceIsSorted(ws, func(i, j int) bool { return ws[i].FQDN < ws[j].FQDN }) {
		t.Error("FQDNWeights not sorted by FQDN")
	}
}

func TestOrgClouds(t *testing.T) {
	s := small(t)
	if got := s.OrgClouds("pagead2.googlesyndication.com"); len(got) != 1 || got[0] != geodata.GoogleCloud {
		t.Errorf("google clouds = %v", got)
	}
	if got := s.OrgClouds("not-a-real-fqdn.example"); got != nil {
		t.Errorf("unknown fqdn clouds = %v", got)
	}
}

func TestStudyWindows(t *testing.T) {
	s := small(t)
	if !s.Start.Before(s.End) || !s.End.Before(s.ISPEnd) {
		t.Error("study windows out of order")
	}
	// Inventory bindings must remain valid at the June 2018 ISP snapshot.
	june := time.Date(2018, 6, 20, 12, 0, 0, 0, time.UTC)
	valid := 0
	ips := s.Inventory.IPs()
	for _, ip := range ips {
		if s.Inventory.IsTrackingIP(ip, june) {
			valid++
		}
	}
	if frac := float64(valid) / float64(len(ips)); frac < 0.5 {
		t.Errorf("only %.2f of tracker IPs valid at the June snapshot", frac)
	}
}

func TestMajorsCarrySubstantialTraffic(t *testing.T) {
	s := small(t)
	var major, total int64
	for _, r := range s.Dataset.Rows() {
		if !r.Class.IsTracking() {
			continue
		}
		total++
		if svc, ok := s.Graph.ServiceByFQDN(s.Dataset.FQDN(r)); ok && svc.Major {
			major++
		}
	}
	frac := float64(major) / float64(total)
	if frac < 0.08 || frac > 0.6 {
		t.Errorf("major share of tracking flows = %.3f, want substantial", frac)
	}
}

func TestSensitiveFlowShare(t *testing.T) {
	s := small(t)
	var sens, total int64
	for _, r := range s.Dataset.Rows() {
		if !r.Class.IsTracking() {
			continue
		}
		total++
		if _, ok := s.Identification.ByPublisher[s.Dataset.Publisher(r)]; ok {
			sens++
		}
	}
	frac := float64(sens) / float64(total)
	if frac < 0.005 || frac > 0.10 {
		t.Errorf("sensitive flow share = %.4f, want ~0.029 (Fig 9)", frac)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestScalePopulation(t *testing.T) {
	pop := []browser.CountryCount{{Country: "ES", Users: 40}, {Country: "SE", Users: 2}}
	half := scalePopulation(pop, 0.5)
	if half[0].Users != 20 {
		t.Errorf("ES scaled to %d, want 20", half[0].Users)
	}
	if half[1].Users < 1 {
		t.Error("small countries must keep at least one user")
	}
	same := scalePopulation(pop, 1.0)
	if same[0].Users != 40 {
		t.Error("scale 1 must not change the population")
	}
}

func TestOrgRank(t *testing.T) {
	cases := map[string]int{
		"dsp0012": 12, "adnet0700": 700, "google": 0, "xchg0000": 0, "chat003": 3,
	}
	for name, want := range cases {
		if got := orgRank(name); got != want {
			t.Errorf("orgRank(%s) = %d, want %d", name, got, want)
		}
	}
}

// datasetHash fingerprints everything the classification pipeline
// produced: the row slice, the interner tables, the country and
// publisher indexes, and the visit count.
func datasetHash(s *Scenario) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	mix := func(x uint64) {
		for i := 0; i < 8; i++ {
			h ^= (x >> (8 * i)) & 0xff
			h *= prime
		}
	}
	mixStr := func(str string) {
		for i := 0; i < len(str); i++ {
			h ^= uint64(str[i])
			h *= prime
		}
		mix(uint64(len(str)))
	}
	ds := s.Dataset
	for _, r := range ds.Rows() {
		mix(r.URLHash)
		mix(uint64(r.IP))
		mix(uint64(r.FQDN))
		mix(uint64(r.RefFQDN))
		mix(uint64(r.Publisher))
		mix(uint64(r.User))
		mix(uint64(r.Day))
		mix(uint64(r.Country))
		mix(uint64(r.Flags))
		mix(uint64(r.Class))
	}
	for id := 0; id < ds.FQDNs.Len(); id++ {
		mixStr(ds.FQDNs.Str(uint32(id)))
	}
	for _, c := range ds.Countries {
		mixStr(string(c))
	}
	for _, p := range ds.Publishers {
		mixStr(p.Domain)
	}
	mix(uint64(ds.Visits))
	return h
}

// TestWorkerCountInvariance is the PR's determinism contract: the
// finalized Dataset — and the experiment outputs derived from it — must
// hash identically whether the simulation ran sequentially or on a
// worker pool, because per-user RNG streams and the shard/merge step
// make the pipeline independent of scheduling.
func TestWorkerCountInvariance(t *testing.T) {
	p := Params{Seed: 5, Scale: 0.02, VisitsPerUser: 8}

	p.Workers = 1
	seq := Build(p)
	p.Workers = 4
	par := Build(p)

	if hs, hp := datasetHash(seq), datasetHash(par); hs != hp {
		t.Fatalf("dataset hash differs: sequential %x vs 4 workers %x", hs, hp)
	}
	if seq.Inventory.NumIPs() != par.Inventory.NumIPs() ||
		seq.Inventory.NumExtra() != par.Inventory.NumExtra() {
		t.Error("tracker inventories differ across worker counts")
	}

	// Per-table experiment outputs must agree too (core.Analyze itself
	// shards internally; its merge must also be order-insensitive).
	for _, svc := range []struct {
		name string
		a, b *core.Analysis
	}{
		{"truth", core.Analyze(seq.Dataset, seq.Truth, nil), core.Analyze(par.Dataset, par.Truth, nil)},
		{"maxmind", core.Analyze(seq.Dataset, seq.MaxMind, nil), core.Analyze(par.Dataset, par.MaxMind, nil)},
	} {
		ic1, eu1, eur1, n1 := svc.a.RegionConfinement(core.EU28Origin)
		ic2, eu2, eur2, n2 := svc.b.RegionConfinement(core.EU28Origin)
		if ic1 != ic2 || eu1 != eu2 || eur1 != eur2 || n1 != n2 {
			t.Errorf("%s confinement differs: (%v %v %v %v) vs (%v %v %v %v)",
				svc.name, ic1, eu1, eur1, n1, ic2, eu2, eur2, n2)
		}
	}
}

// TestWeightedPoolMatchesLinearScan pins the precomputed-cumulative
// picker to the draw semantics of the original subtract-scan.
func TestWeightedPoolMatchesLinearScan(t *testing.T) {
	linear := func(x int, pool []struct {
		c geodata.Country
		w int
	}) geodata.Country {
		for _, e := range pool {
			x -= e.w
			if x < 0 {
				return e.c
			}
		}
		return pool[len(pool)-1].c
	}
	for _, pool := range [][]struct {
		c geodata.Country
		w int
	}{euDCPool, hqPool} {
		p := newWeightedPool(pool)
		for x := 0; x < p.total; x++ {
			if got, want := p.countries[p.upperBound(x)], linear(x, pool); got != want {
				t.Fatalf("x=%d: picker %s, linear scan %s", x, got, want)
			}
		}
	}
}
