package netsim

import (
	"math/rand"

	"crossborder/internal/geodata"
)

// RTTModel produces synthetic round-trip times between countries. The
// model is the standard geolocation-constraint one: propagation delay is
// bounded below by great-circle distance at ~100 km per RTT millisecond,
// plus a last-mile/queueing component. Active geolocation (internal/geo)
// relies on the lower bound being physically sound: a probe can never
// measure an RTT lower than the speed-of-light limit.
type RTTModel struct {
	// LastMileMs is the fixed access-network latency added to every
	// measurement (default 4ms when zero).
	LastMileMs float64
	// JitterMs is the upper bound of uniform random queueing delay
	// (default 6ms when zero).
	JitterMs float64
	// PathStretch multiplies the great-circle propagation delay to model
	// non-ideal fibre routes (default 1.3 when zero).
	PathStretch float64
}

func (m RTTModel) lastMile() float64 {
	if m.LastMileMs <= 0 {
		return 4
	}
	return m.LastMileMs
}

func (m RTTModel) jitter() float64 {
	if m.JitterMs <= 0 {
		return 6
	}
	return m.JitterMs
}

func (m RTTModel) stretch() float64 {
	if m.PathStretch <= 0 {
		return 1.3
	}
	return m.PathStretch
}

// Measure returns one RTT sample in milliseconds between two countries.
// rng supplies the jitter; results are always >= the physical minimum for
// the distance.
func (m RTTModel) Measure(rng *rand.Rand, from, to geodata.Country) float64 {
	d := geodata.DistanceKm(from, to)
	if d < 0 {
		// Unknown country: behave like an intercontinental path so the
		// geolocator cannot accidentally "confirm" a bogus location.
		d = 9000
	}
	base := geodata.MinRTTms(d) * m.stretch()
	return base + m.lastMile() + rng.Float64()*m.jitter()
}

// MinPossible returns the physical lower bound for an RTT between the two
// countries, used by the geolocator's speed-of-light filter.
func (m RTTModel) MinPossible(from, to geodata.Country) float64 {
	d := geodata.DistanceKm(from, to)
	if d < 0 {
		return 0
	}
	return geodata.MinRTTms(d)
}
