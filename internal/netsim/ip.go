// Package netsim provides the synthetic network substrate underneath the
// reproduction: a registry of organizations (tracking companies, ad
// exchanges, CDNs), the datacenters they deploy servers in, a synthetic
// IPv4 address space carved into per-deployment blocks, ground-truth
// IP-to-location mapping, and a great-circle RTT model used by the active
// geolocation simulator.
//
// The paper's measurements ride on real IPs owned by real companies; here
// every IP is allocated from a private synthetic space but keeps the
// properties that matter: each IP belongs to exactly one organization and
// one physical datacenter, organizations span many countries, and some IPs
// (ad exchanges) serve many domains while most serve one.
package netsim

import (
	"fmt"
	"strconv"
	"strings"
)

// IP is an IPv4 address held as a big-endian uint32. It is a comparable
// value type usable as a map key, following the gopacket Endpoint idiom.
type IP uint32

// String formats the address in dotted-quad notation.
func (ip IP) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}

// ParseIP parses dotted-quad notation. It returns an error for anything
// that is not exactly four dot-separated octets in range.
func ParseIP(s string) (IP, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("netsim: invalid IPv4 %q", s)
	}
	var ip uint32
	for _, p := range parts {
		n, err := strconv.Atoi(p)
		if err != nil || n < 0 || n > 255 || (len(p) > 1 && p[0] == '0') {
			return 0, fmt.Errorf("netsim: invalid IPv4 octet %q in %q", p, s)
		}
		ip = ip<<8 | uint32(n)
	}
	return IP(ip), nil
}

// Block is a CIDR block: the base address and prefix length.
type Block struct {
	Base      IP
	PrefixLen int
}

// Size returns the number of addresses in the block.
func (b Block) Size() uint32 {
	if b.PrefixLen < 0 || b.PrefixLen > 32 {
		return 0
	}
	return 1 << (32 - b.PrefixLen)
}

// Contains reports whether ip falls inside the block.
func (b Block) Contains(ip IP) bool {
	if b.PrefixLen < 0 || b.PrefixLen > 32 {
		return false
	}
	mask := ^uint32(0) << (32 - b.PrefixLen)
	if b.PrefixLen == 0 {
		mask = 0
	}
	return uint32(b.Base)&mask == uint32(ip)&mask
}

// Nth returns the i-th address of the block. It panics if i is out of range.
func (b Block) Nth(i uint32) IP {
	if i >= b.Size() {
		panic(fmt.Sprintf("netsim: address %d out of range for /%d", i, b.PrefixLen))
	}
	return b.Base + IP(i)
}

// String formats the block in CIDR notation.
func (b Block) String() string {
	return fmt.Sprintf("%s/%d", b.Base, b.PrefixLen)
}

// FastHash returns a well-mixed hash of the IP, suitable for sharding.
func (ip IP) FastHash() uint64 {
	// SplitMix64 finalizer over the 32-bit value.
	x := uint64(ip) + 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
