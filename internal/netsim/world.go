package netsim

import (
	"fmt"
	"sort"

	"crossborder/internal/geodata"
)

// OrgKind classifies organizations the way the analysis cares about them.
type OrgKind uint8

const (
	// KindMajorAdTech is a large advertising + tracking company with a
	// global server footprint (the paper's Google/Amazon/Facebook tier).
	KindMajorAdTech OrgKind = iota
	// KindAdTech is a mid-size ad network, DSP, SSP or DMP.
	KindAdTech
	// KindExchange operates ad-exchange / cookie-sync endpoints whose IPs
	// serve many domains (the Fig 5 population).
	KindExchange
	// KindCDN serves static, non-tracking content.
	KindCDN
	// KindWidget provides non-tracking third-party services: live chat,
	// commenting, fonts, video embeds.
	KindWidget
	// KindHoster is a national hosting company (used for publishers).
	KindHoster
)

func (k OrgKind) String() string {
	switch k {
	case KindMajorAdTech:
		return "major-adtech"
	case KindAdTech:
		return "adtech"
	case KindExchange:
		return "exchange"
	case KindCDN:
		return "cdn"
	case KindWidget:
		return "widget"
	case KindHoster:
		return "hoster"
	default:
		return fmt.Sprintf("OrgKind(%d)", uint8(k))
	}
}

// IsTracking reports whether flows to this kind of organization are ad or
// tracking related (ground truth used to score the classifier).
func (k OrgKind) IsTracking() bool {
	switch k {
	case KindMajorAdTech, KindAdTech, KindExchange:
		return true
	}
	return false
}

// Org is an organization owning server deployments.
type Org struct {
	Name string
	Kind OrgKind
	// HQ is the country of the legal entity. Commercial geolocation
	// databases tend to geolocate all the org's infrastructure here.
	HQ geodata.Country
	// Clouds lists the public cloud providers this org leases servers
	// from (empty means own facilities only). Drives §5.2 PoP mirroring.
	Clouds []geodata.CloudProvider
	// deployments are indices into World.deployments.
	deployments []int
}

// Deployment is a pool of servers of one org in one datacenter.
type Deployment struct {
	Org      *Org
	Country  geodata.Country
	Provider geodata.CloudProvider // "" when the org uses its own facility
	Block    Block
}

// World is the registry tying orgs, deployments and the IP space together.
// Build one with NewWorld, register orgs and deployments, then treat it as
// read-only; lookups are safe for concurrent use after construction.
type World struct {
	orgs      map[string]*Org
	orgList   []*Org
	deploys   []Deployment
	nextBase  uint32
	ipIndex   []ipRange // sorted by base, for LocateIP
	eyeballs  map[geodata.Country]Block
	nextEyeID uint32
}

type ipRange struct {
	block  Block
	deploy int
}

// NewWorld returns an empty world. Server blocks are carved from
// 16.0.0.0/4-ish synthetic space upward; eyeball blocks from 96.0.0.0.
func NewWorld() *World {
	return &World{
		orgs:      make(map[string]*Org),
		nextBase:  0x10000000, // 16.0.0.0
		eyeballs:  make(map[geodata.Country]Block),
		nextEyeID: 0x60000000, // 96.0.0.0
	}
}

// AddOrg registers an organization. It panics on duplicate names: the
// scenario builder is the only caller and duplicates are programming bugs.
func (w *World) AddOrg(name string, kind OrgKind, hq geodata.Country, clouds ...geodata.CloudProvider) *Org {
	if _, dup := w.orgs[name]; dup {
		panic("netsim: duplicate org " + name)
	}
	o := &Org{Name: name, Kind: kind, HQ: hq, Clouds: clouds}
	w.orgs[name] = o
	w.orgList = append(w.orgList, o)
	return o
}

// Org returns a registered organization, or nil.
func (w *World) Org(name string) *Org { return w.orgs[name] }

// Orgs returns all organizations in registration order.
func (w *World) Orgs() []*Org { return w.orgList }

// Deploy allocates a server block of 2^(32-prefixLen) addresses for org in
// the given country. provider is empty for own facilities.
func (w *World) Deploy(org *Org, country geodata.Country, provider geodata.CloudProvider, prefixLen int) Deployment {
	if org == nil {
		panic("netsim: Deploy on nil org")
	}
	if prefixLen < 16 || prefixLen > 30 {
		panic(fmt.Sprintf("netsim: deployment prefix /%d out of supported range", prefixLen))
	}
	size := uint32(1) << (32 - prefixLen)
	// Align the base to the block size.
	base := (w.nextBase + size - 1) &^ (size - 1)
	w.nextBase = base + size
	d := Deployment{Org: org, Country: country, Provider: provider, Block: Block{Base: IP(base), PrefixLen: prefixLen}}
	idx := len(w.deploys)
	w.deploys = append(w.deploys, d)
	org.deployments = append(org.deployments, idx)
	w.ipIndex = append(w.ipIndex, ipRange{block: d.Block, deploy: idx})
	return d
}

// Deployments returns the org's deployments in creation order.
func (w *World) Deployments(org *Org) []Deployment {
	out := make([]Deployment, 0, len(org.deployments))
	for _, i := range org.deployments {
		out = append(out, w.deploys[i])
	}
	return out
}

// AllDeployments returns every deployment in creation order.
func (w *World) AllDeployments() []Deployment {
	out := make([]Deployment, len(w.deploys))
	copy(out, w.deploys)
	return out
}

// sortIndex must be called once after all deployments are registered and
// before LocateIP; the scenario builder calls Freeze.
func (w *World) sortIndex() {
	sort.Slice(w.ipIndex, func(i, j int) bool {
		return w.ipIndex[i].block.Base < w.ipIndex[j].block.Base
	})
}

// Freeze finalizes the world for lookups. Further Deploy calls after
// Freeze require another Freeze before LocateIP sees them.
func (w *World) Freeze() { w.sortIndex() }

// LocateIP returns the deployment owning ip, with ground-truth location.
func (w *World) LocateIP(ip IP) (Deployment, bool) {
	i := sort.Search(len(w.ipIndex), func(i int) bool {
		return w.ipIndex[i].block.Base > ip
	})
	if i == 0 {
		return Deployment{}, false
	}
	r := w.ipIndex[i-1]
	if !r.block.Contains(ip) {
		return Deployment{}, false
	}
	return w.deploys[r.deploy], true
}

// EyeballBlock returns (allocating on first use) the per-country address
// block that simulated end users draw their source addresses from.
func (w *World) EyeballBlock(country geodata.Country) Block {
	if b, ok := w.eyeballs[country]; ok {
		return b
	}
	b := Block{Base: IP(w.nextEyeID), PrefixLen: 16}
	w.nextEyeID += 1 << 16
	w.eyeballs[country] = b
	return b
}

// EyeballCountry returns the country of an eyeball IP, or "" if the IP is
// not from any eyeball block.
func (w *World) EyeballCountry(ip IP) geodata.Country {
	for c, b := range w.eyeballs {
		if b.Contains(ip) {
			return c
		}
	}
	return ""
}
