package netsim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"crossborder/internal/geodata"
)

func TestIPStringParseRoundTrip(t *testing.T) {
	cases := []string{"0.0.0.0", "16.0.0.1", "255.255.255.255", "10.1.2.3"}
	for _, s := range cases {
		ip, err := ParseIP(s)
		if err != nil {
			t.Fatalf("ParseIP(%q): %v", s, err)
		}
		if ip.String() != s {
			t.Errorf("round trip %q -> %q", s, ip.String())
		}
	}
}

func TestParseIPErrors(t *testing.T) {
	bad := []string{"", "1.2.3", "1.2.3.4.5", "256.1.1.1", "-1.2.3.4", "a.b.c.d", "01.2.3.4"}
	for _, s := range bad {
		if _, err := ParseIP(s); err == nil {
			t.Errorf("ParseIP(%q) succeeded, want error", s)
		}
	}
}

func TestIPParseProperty(t *testing.T) {
	f := func(v uint32) bool {
		ip := IP(v)
		back, err := ParseIP(ip.String())
		return err == nil && back == ip
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBlock(t *testing.T) {
	b := Block{Base: mustIP(t, "16.0.0.0"), PrefixLen: 24}
	if b.Size() != 256 {
		t.Errorf("Size = %d", b.Size())
	}
	if !b.Contains(mustIP(t, "16.0.0.255")) {
		t.Error("Contains(16.0.0.255) = false")
	}
	if b.Contains(mustIP(t, "16.0.1.0")) {
		t.Error("Contains(16.0.1.0) = true")
	}
	if got := b.Nth(5); got.String() != "16.0.0.5" {
		t.Errorf("Nth(5) = %s", got)
	}
	if b.String() != "16.0.0.0/24" {
		t.Errorf("String = %s", b.String())
	}
}

func TestBlockNthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Nth out of range must panic")
		}
	}()
	b := Block{Base: 0, PrefixLen: 30}
	b.Nth(4)
}

func TestBlockContainsProperty(t *testing.T) {
	f := func(base uint32, off uint16) bool {
		b := Block{Base: IP(base &^ 0xffff), PrefixLen: 16}
		return b.Contains(IP(uint32(b.Base) + uint32(off)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFastHashDistribution(t *testing.T) {
	// Adjacent IPs must land in different shards most of the time.
	buckets := make(map[uint64]int)
	for i := uint32(0); i < 1024; i++ {
		buckets[IP(0x10000000+i).FastHash()&7]++
	}
	for shard, n := range buckets {
		if n < 64 || n > 192 {
			t.Errorf("shard %d has %d/1024 items; hash poorly mixed", shard, n)
		}
	}
}

func mustIP(t *testing.T, s string) IP {
	t.Helper()
	ip, err := ParseIP(s)
	if err != nil {
		t.Fatal(err)
	}
	return ip
}

func buildWorld(t *testing.T) (*World, *Org, *Org) {
	t.Helper()
	w := NewWorld()
	g := w.AddOrg("google", KindMajorAdTech, "US", geodata.GoogleCloud)
	f := w.AddOrg("facebook", KindMajorAdTech, "US")
	w.Deploy(g, "US", "", 20)
	w.Deploy(g, "IE", geodata.GoogleCloud, 22)
	w.Deploy(g, "NL", geodata.GoogleCloud, 22)
	w.Deploy(f, "US", "", 22)
	w.Deploy(f, "IE", "", 24)
	w.Freeze()
	return w, g, f
}

func TestWorldOrgRegistry(t *testing.T) {
	w, g, _ := buildWorld(t)
	if w.Org("google") != g {
		t.Error("Org lookup failed")
	}
	if w.Org("missing") != nil {
		t.Error("missing org should be nil")
	}
	if len(w.Orgs()) != 2 {
		t.Errorf("Orgs() len = %d", len(w.Orgs()))
	}
}

func TestWorldDuplicateOrgPanics(t *testing.T) {
	w := NewWorld()
	w.AddOrg("x", KindAdTech, "US")
	defer func() {
		if recover() == nil {
			t.Error("duplicate AddOrg must panic")
		}
	}()
	w.AddOrg("x", KindAdTech, "US")
}

func TestDeployAndLocate(t *testing.T) {
	w, g, f := buildWorld(t)
	gd := w.Deployments(g)
	if len(gd) != 3 {
		t.Fatalf("google deployments = %d", len(gd))
	}
	// Every address of every deployment locates back to it.
	for _, d := range w.AllDeployments() {
		for _, off := range []uint32{0, 1, d.Block.Size() - 1} {
			ip := d.Block.Nth(off)
			got, ok := w.LocateIP(ip)
			if !ok {
				t.Fatalf("LocateIP(%s) not found", ip)
			}
			if got.Org != d.Org || got.Country != d.Country {
				t.Errorf("LocateIP(%s) = %s/%s, want %s/%s",
					ip, got.Org.Name, got.Country, d.Org.Name, d.Country)
			}
		}
	}
	// Blocks must not overlap: facebook's addresses never locate to google.
	for _, d := range w.Deployments(f) {
		dep, ok := w.LocateIP(d.Block.Nth(0))
		if !ok || dep.Org != f {
			t.Errorf("facebook block mis-located")
		}
	}
}

func TestLocateIPMisses(t *testing.T) {
	w, _, _ := buildWorld(t)
	if _, ok := w.LocateIP(mustIP(t, "1.1.1.1")); ok {
		t.Error("address below all blocks must miss")
	}
	if _, ok := w.LocateIP(mustIP(t, "250.0.0.1")); ok {
		t.Error("address above all blocks must miss")
	}
}

func TestDeployValidation(t *testing.T) {
	w := NewWorld()
	o := w.AddOrg("o", KindAdTech, "US")
	for _, bad := range []int{8, 15, 31, 33} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Deploy with /%d must panic", bad)
				}
			}()
			w.Deploy(o, "US", "", bad)
		}()
	}
	defer func() {
		if recover() == nil {
			t.Error("Deploy(nil org) must panic")
		}
	}()
	w.Deploy(nil, "US", "", 24)
}

func TestEyeballBlocks(t *testing.T) {
	w := NewWorld()
	de := w.EyeballBlock("DE")
	de2 := w.EyeballBlock("DE")
	if de != de2 {
		t.Error("EyeballBlock not stable per country")
	}
	pl := w.EyeballBlock("PL")
	if de == pl {
		t.Error("different countries share an eyeball block")
	}
	if got := w.EyeballCountry(de.Nth(42)); got != "DE" {
		t.Errorf("EyeballCountry = %s", got)
	}
	if got := w.EyeballCountry(mustIP(t, "16.0.0.1")); got != "" {
		t.Errorf("server IP EyeballCountry = %s, want empty", got)
	}
}

func TestRTTModelPhysicalBound(t *testing.T) {
	var m RTTModel
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		rtt := m.Measure(rng, "DE", "US")
		if rtt < m.MinPossible("DE", "US") {
			t.Fatalf("RTT %f below physical minimum %f", rtt, m.MinPossible("DE", "US"))
		}
	}
	// Close countries must generally measure lower than far ones.
	var nearSum, farSum float64
	for i := 0; i < 100; i++ {
		nearSum += m.Measure(rng, "DE", "NL")
		farSum += m.Measure(rng, "DE", "JP")
	}
	if nearSum >= farSum {
		t.Errorf("DE-NL avg %.1f >= DE-JP avg %.1f", nearSum/100, farSum/100)
	}
}

func TestRTTUnknownCountry(t *testing.T) {
	var m RTTModel
	rng := rand.New(rand.NewSource(2))
	if rtt := m.Measure(rng, "DE", "??"); rtt < 50 {
		t.Errorf("unknown country RTT %f suspiciously low", rtt)
	}
	if m.MinPossible("DE", "??") != 0 {
		t.Error("unknown country MinPossible should be 0")
	}
}

func TestOrgKindStrings(t *testing.T) {
	kinds := []OrgKind{KindMajorAdTech, KindAdTech, KindExchange, KindCDN, KindWidget, KindHoster}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Errorf("kind %d string %q empty or duplicate", k, s)
		}
		seen[s] = true
	}
	if !KindMajorAdTech.IsTracking() || !KindExchange.IsTracking() {
		t.Error("adtech kinds must be tracking")
	}
	if KindCDN.IsTracking() || KindWidget.IsTracking() || KindHoster.IsTracking() {
		t.Error("non-adtech kinds must not be tracking")
	}
}
