// Package tablefmt renders the reproduction's tables and figures as
// plain-text artifacts: aligned tables, horizontal bar charts, ASCII CDF
// plots, and Sankey flow summaries. Output is deterministic so it can be
// diffed across runs.
package tablefmt

import (
	"fmt"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows added so far.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table.
func (t *Table) String() string {
	cols := len(t.Headers)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	for i, h := range t.Headers {
		if len(h) > widths[i] {
			widths[i] = len(h)
		}
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}

	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		var line strings.Builder
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			if i > 0 {
				line.WriteString("  ")
			}
			fmt.Fprintf(&line, "%-*s", widths[i], cell)
		}
		b.WriteString(strings.TrimRight(line.String(), " "))
		b.WriteByte('\n')
	}
	if len(t.Headers) > 0 {
		writeRow(t.Headers)
		sep := make([]string, cols)
		for i := range sep {
			sep[i] = strings.Repeat("-", widths[i])
		}
		writeRow(sep)
	}
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// Bar is one labelled value of a horizontal bar chart.
type Bar struct {
	Label string
	Value float64
	// Note is appended after the numeric value (e.g. a raw count).
	Note string
}

// BarChart renders labelled values as horizontal bars scaled so the largest
// bar occupies width runes. Values must be non-negative.
func BarChart(title string, width int, bars []Bar) string {
	if width <= 0 {
		width = 40
	}
	var max float64
	labelW := 0
	for _, b := range bars {
		if b.Value > max {
			max = b.Value
		}
		if len(b.Label) > labelW {
			labelW = len(b.Label)
		}
	}
	var sb strings.Builder
	if title != "" {
		sb.WriteString(title)
		sb.WriteByte('\n')
	}
	for _, b := range bars {
		n := 0
		if max > 0 {
			n = int(b.Value / max * float64(width))
		}
		if b.Value > 0 && n == 0 {
			n = 1 // visible sliver for tiny non-zero values
		}
		fmt.Fprintf(&sb, "%-*s |%-*s %8.2f", labelW, b.Label, width, strings.Repeat("#", n), b.Value)
		if b.Note != "" {
			sb.WriteString("  ")
			sb.WriteString(b.Note)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// CDFPlot renders (x, y) points of a CDF as an ASCII scatter of fixed size.
// Points must have y in [0, 1] and be sorted by x.
func CDFPlot(title string, pts []struct{ X, Y float64 }, width, height int) string {
	if width <= 0 {
		width = 60
	}
	if height <= 0 {
		height = 12
	}
	var sb strings.Builder
	if title != "" {
		sb.WriteString(title)
		sb.WriteByte('\n')
	}
	if len(pts) == 0 {
		sb.WriteString("(no data)\n")
		return sb.String()
	}
	minX, maxX := pts[0].X, pts[len(pts)-1].X
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for _, p := range pts {
		col := 0
		if maxX > minX {
			col = int((p.X - minX) / (maxX - minX) * float64(width-1))
		}
		row := height - 1 - int(p.Y*float64(height-1))
		if row < 0 {
			row = 0
		}
		if row >= height {
			row = height - 1
		}
		grid[row][col] = '*'
	}
	for i, line := range grid {
		y := 1 - float64(i)/float64(height-1)
		fmt.Fprintf(&sb, "%4.2f |%s\n", y, string(line))
	}
	fmt.Fprintf(&sb, "      %-*.3g%*.3g\n", width/2, minX, width-width/2, maxX)
	return sb.String()
}

// FlowEdge is one origin→destination edge of a Sankey-style flow summary.
type FlowEdge struct {
	From, To string
	Percent  float64
	Count    int64
}

// Sankey renders origin→destination percentages grouped by origin, the
// textual equivalent of the paper's Sankey diagrams (Figs 6, 7, 8, 10).
func Sankey(title string, edges []FlowEdge) string {
	var sb strings.Builder
	if title != "" {
		sb.WriteString(title)
		sb.WriteByte('\n')
	}
	labelW := 0
	for _, e := range edges {
		if len(e.From) > labelW {
			labelW = len(e.From)
		}
	}
	prev := ""
	for _, e := range edges {
		from := e.From
		if from == prev {
			from = ""
		} else {
			prev = from
		}
		fmt.Fprintf(&sb, "%-*s -> %-22s %7.2f%%", labelW, from, e.To, e.Percent)
		if e.Count > 0 {
			fmt.Fprintf(&sb, "  (%d)", e.Count)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
