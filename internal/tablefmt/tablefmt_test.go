package tablefmt

import (
	"strings"
	"testing"
)

func TestTableBasic(t *testing.T) {
	tbl := NewTable("Title", "Name", "Value")
	tbl.AddRow("alpha", 42)
	tbl.AddRow("b", 3.14159)
	out := tbl.String()
	if !strings.HasPrefix(out, "Title\n") {
		t.Errorf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "42") {
		t.Errorf("missing row content:\n%s", out)
	}
	if !strings.Contains(out, "3.14") {
		t.Errorf("float not formatted with 2 decimals:\n%s", out)
	}
	if tbl.NumRows() != 2 {
		t.Errorf("NumRows = %d", tbl.NumRows())
	}
	// Header separator present.
	if !strings.Contains(out, "----") {
		t.Errorf("missing separator:\n%s", out)
	}
}

func TestTableNoTrailingSpaces(t *testing.T) {
	tbl := NewTable("", "A", "LongHeader")
	tbl.AddRow("x", "y")
	for _, line := range strings.Split(tbl.String(), "\n") {
		if line != strings.TrimRight(line, " ") {
			t.Errorf("trailing spaces in %q", line)
		}
	}
}

func TestTableColumnAlignment(t *testing.T) {
	tbl := NewTable("", "A", "B")
	tbl.AddRow("short", "x")
	tbl.AddRow("muchlongervalue", "y")
	lines := strings.Split(strings.TrimSpace(tbl.String()), "\n")
	// Column B should start at the same offset in both data rows.
	r1, r2 := lines[2], lines[3]
	if strings.Index(r2, "y") <= strings.Index(r1, "short")+len("short") {
		t.Errorf("columns not aligned:\n%s", tbl.String())
	}
}

func TestBarChart(t *testing.T) {
	out := BarChart("Chart", 20, []Bar{
		{Label: "big", Value: 100},
		{Label: "half", Value: 50},
		{Label: "tiny", Value: 0.1, Note: "n=3"},
		{Label: "zero", Value: 0},
	})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if lines[0] != "Chart" {
		t.Errorf("title line = %q", lines[0])
	}
	big := strings.Count(lines[1], "#")
	half := strings.Count(lines[2], "#")
	tiny := strings.Count(lines[3], "#")
	zero := strings.Count(lines[4], "#")
	if big != 20 {
		t.Errorf("largest bar = %d hashes, want 20", big)
	}
	if half != 10 {
		t.Errorf("half bar = %d hashes, want 10", half)
	}
	if tiny != 1 {
		t.Errorf("tiny non-zero bar = %d hashes, want 1 sliver", tiny)
	}
	if zero != 0 {
		t.Errorf("zero bar = %d hashes, want 0", zero)
	}
	if !strings.Contains(lines[3], "n=3") {
		t.Errorf("note missing: %q", lines[3])
	}
}

func TestBarChartEmptyAndDefaults(t *testing.T) {
	out := BarChart("", 0, nil)
	if out != "" {
		t.Errorf("empty chart = %q", out)
	}
	// Zero width must fall back to a sane default without panicking.
	out = BarChart("t", -5, []Bar{{Label: "a", Value: 1}})
	if !strings.Contains(out, "#") {
		t.Errorf("default width chart missing bar: %q", out)
	}
}

func TestCDFPlot(t *testing.T) {
	pts := []struct{ X, Y float64 }{
		{0, 0.1}, {5, 0.5}, {10, 1.0},
	}
	out := CDFPlot("cdf", pts, 30, 8)
	if !strings.Contains(out, "cdf") {
		t.Error("missing title")
	}
	if strings.Count(out, "*") < 3 {
		t.Errorf("expected at least 3 plotted points:\n%s", out)
	}
	// Axis labels include min and max x.
	if !strings.Contains(out, "0") || !strings.Contains(out, "10") {
		t.Errorf("missing axis labels:\n%s", out)
	}
}

func TestCDFPlotEmpty(t *testing.T) {
	out := CDFPlot("t", nil, 10, 5)
	if !strings.Contains(out, "no data") {
		t.Errorf("empty plot = %q", out)
	}
}

func TestSankey(t *testing.T) {
	out := Sankey("Flows", []FlowEdge{
		{From: "EU 28", To: "EU 28", Percent: 84.93, Count: 100},
		{From: "EU 28", To: "N. America", Percent: 10.75},
		{From: "S. America", To: "N. America", Percent: 90},
	})
	if !strings.Contains(out, "Flows") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "84.93%") {
		t.Errorf("missing percent:\n%s", out)
	}
	if !strings.Contains(out, "(100)") {
		t.Errorf("missing count:\n%s", out)
	}
	// Repeated origin is blanked on subsequent lines.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if !strings.HasPrefix(lines[2], " ") {
		t.Errorf("second EU 28 line should blank origin: %q", lines[2])
	}
}
