package netflow

import (
	"encoding/binary"
	"fmt"
	"time"

	"crossborder/internal/netsim"
)

// NetFlow v9 (RFC 3954) wire format, restricted to the fields the study
// consumes. One template describes the record layout; data flowsets carry
// packed records.

// V9Version is the version field of every export packet.
const V9Version = 9

// Field type numbers from RFC 3954.
const (
	fieldInBytes   = 1
	fieldInPkts    = 2
	fieldProtocol  = 4
	fieldTOS       = 5
	fieldL4SrcPort = 7
	fieldIPv4Src   = 8
	fieldInputSNMP = 10
	fieldL4DstPort = 11
	fieldIPv4Dst   = 12
	fieldOutSNMP   = 14
	fieldLastSw    = 21
	fieldFirstSw   = 22
)

// TemplateID is the template used for all exported records.
const TemplateID = 260

// templateFields is the (type, length) layout of our record template.
var templateFields = [][2]uint16{
	{fieldIPv4Src, 4},
	{fieldIPv4Dst, 4},
	{fieldL4SrcPort, 2},
	{fieldL4DstPort, 2},
	{fieldProtocol, 1},
	{fieldTOS, 1},
	{fieldInputSNMP, 2},
	{fieldOutSNMP, 2},
	{fieldInPkts, 4},
	{fieldInBytes, 4},
	{fieldFirstSw, 4},
	{fieldLastSw, 4},
}

// recordWireSize is the packed size of one record.
const recordWireSize = 4 + 4 + 2 + 2 + 1 + 1 + 2 + 2 + 4 + 4 + 4 + 4 // 34

// Encoder packs flow records into v9 export packets.
type Encoder struct {
	SourceID uint32
	// Boot anchors sysUptime and the FIRST/LAST_SWITCHED fields.
	Boot time.Time
	seq  uint32
}

// EncodeTemplate builds a packet carrying only the template flowset.
// Collectors must see it before they can decode data packets.
func (e *Encoder) EncodeTemplate(now time.Time) []byte {
	body := make([]byte, 0, 8+4*len(templateFields))
	body = be16(body, 0) // flowset id 0 = template
	body = be16(body, uint16(8+4*len(templateFields)))
	body = be16(body, TemplateID)
	body = be16(body, uint16(len(templateFields)))
	for _, f := range templateFields {
		body = be16(body, f[0])
		body = be16(body, f[1])
	}
	return e.packet(now, 0, body)
}

// EncodeData builds one packet carrying up to len(records) records; it
// returns the packet and how many records were packed (bounded by the
// 64KB packet limit).
func (e *Encoder) EncodeData(now time.Time, records []Record) ([]byte, int) {
	maxRecords := (65000 - 20 - 4) / recordWireSize
	n := len(records)
	if n > maxRecords {
		n = maxRecords
	}
	length := 4 + n*recordWireSize
	pad := (4 - length%4) % 4
	body := make([]byte, 0, length+pad)
	body = be16(body, TemplateID)
	body = be16(body, uint16(length+pad))
	for _, r := range records[:n] {
		body = be32(body, uint32(r.SrcIP))
		body = be32(body, uint32(r.DstIP))
		body = be16(body, r.SrcPort)
		body = be16(body, r.DstPort)
		body = append(body, r.Proto, r.TOS)
		body = be16(body, r.InputIf)
		body = be16(body, r.OutputIf)
		body = be32(body, r.Packets)
		body = be32(body, r.Bytes)
		body = be32(body, e.uptimeMs(r.First))
		body = be32(body, e.uptimeMs(r.Last))
	}
	for i := 0; i < pad; i++ {
		body = append(body, 0)
	}
	return e.packet(now, uint16(n), body), n
}

func (e *Encoder) uptimeMs(t time.Time) uint32 {
	if e.Boot.IsZero() || t.Before(e.Boot) {
		return 0
	}
	return uint32(t.Sub(e.Boot) / time.Millisecond)
}

// packet wraps a flowset body with the v9 header.
func (e *Encoder) packet(now time.Time, count uint16, body []byte) []byte {
	e.seq++
	out := make([]byte, 0, 20+len(body))
	out = be16(out, V9Version)
	out = be16(out, count)
	out = be32(out, e.uptimeMs(now))
	out = be32(out, uint32(now.Unix()))
	out = be32(out, e.seq)
	out = be32(out, e.SourceID)
	return append(out, body...)
}

func be16(b []byte, v uint16) []byte { return append(b, byte(v>>8), byte(v)) }
func be32(b []byte, v uint32) []byte {
	return append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// Decoder parses v9 export packets, caching templates per source.
type Decoder struct {
	// templates maps (sourceID, templateID) to the field layout.
	templates map[[2]uint32][][2]uint16
	// Boot mirrors the exporter's boot time to reconstruct timestamps;
	// zero leaves First/Last at the packet export time.
	Boot time.Time
}

// NewDecoder returns an empty decoder.
func NewDecoder() *Decoder {
	return &Decoder{templates: make(map[[2]uint32][][2]uint16)}
}

// Decode parses one export packet, returning the flow records of every
// data flowset whose template is known. Unknown-template flowsets are
// skipped silently (the v9 contract: templates arrive periodically).
func (d *Decoder) Decode(pkt []byte) ([]Record, error) {
	if len(pkt) < 20 {
		return nil, fmt.Errorf("netflow: packet too short (%d bytes)", len(pkt))
	}
	if binary.BigEndian.Uint16(pkt[0:2]) != V9Version {
		return nil, fmt.Errorf("netflow: version %d, want 9", binary.BigEndian.Uint16(pkt[0:2]))
	}
	exportUnix := binary.BigEndian.Uint32(pkt[8:12])
	sourceID := binary.BigEndian.Uint32(pkt[16:20])
	var out []Record

	off := 20
	for off+4 <= len(pkt) {
		setID := binary.BigEndian.Uint16(pkt[off : off+2])
		setLen := int(binary.BigEndian.Uint16(pkt[off+2 : off+4]))
		if setLen < 4 || off+setLen > len(pkt) {
			return out, fmt.Errorf("netflow: bad flowset length %d at offset %d", setLen, off)
		}
		body := pkt[off+4 : off+setLen]
		switch {
		case setID == 0:
			if err := d.parseTemplates(sourceID, body); err != nil {
				return out, err
			}
		case setID >= 256:
			recs, err := d.parseData(sourceID, uint32(setID), body, exportUnix)
			if err != nil {
				return out, err
			}
			out = append(out, recs...)
		}
		off += setLen
	}
	return out, nil
}

func (d *Decoder) parseTemplates(sourceID uint32, body []byte) error {
	off := 0
	for off+4 <= len(body) {
		tid := binary.BigEndian.Uint16(body[off : off+2])
		fieldCount := int(binary.BigEndian.Uint16(body[off+2 : off+4]))
		off += 4
		if off+4*fieldCount > len(body) {
			return fmt.Errorf("netflow: truncated template %d", tid)
		}
		fields := make([][2]uint16, 0, fieldCount)
		for i := 0; i < fieldCount; i++ {
			fields = append(fields, [2]uint16{
				binary.BigEndian.Uint16(body[off : off+2]),
				binary.BigEndian.Uint16(body[off+2 : off+4]),
			})
			off += 4
		}
		d.templates[[2]uint32{sourceID, uint32(tid)}] = fields
	}
	return nil
}

func (d *Decoder) parseData(sourceID, tid uint32, body []byte, exportUnix uint32) ([]Record, error) {
	fields, ok := d.templates[[2]uint32{sourceID, tid}]
	if !ok {
		return nil, nil // template not yet seen
	}
	recSize := 0
	for _, f := range fields {
		recSize += int(f[1])
	}
	if recSize == 0 {
		return nil, fmt.Errorf("netflow: zero-size template %d", tid)
	}
	var out []Record
	exportTime := time.Unix(int64(exportUnix), 0).UTC()
	for off := 0; off+recSize <= len(body); off += recSize {
		var r Record
		r.First, r.Last = exportTime, exportTime
		p := off
		for _, f := range fields {
			v := body[p : p+int(f[1])]
			switch f[0] {
			case fieldIPv4Src:
				r.SrcIP = netsim.IP(binary.BigEndian.Uint32(v))
			case fieldIPv4Dst:
				r.DstIP = netsim.IP(binary.BigEndian.Uint32(v))
			case fieldL4SrcPort:
				r.SrcPort = binary.BigEndian.Uint16(v)
			case fieldL4DstPort:
				r.DstPort = binary.BigEndian.Uint16(v)
			case fieldProtocol:
				r.Proto = v[0]
			case fieldTOS:
				r.TOS = v[0]
			case fieldInputSNMP:
				r.InputIf = binary.BigEndian.Uint16(v)
			case fieldOutSNMP:
				r.OutputIf = binary.BigEndian.Uint16(v)
			case fieldInPkts:
				r.Packets = binary.BigEndian.Uint32(v)
			case fieldInBytes:
				r.Bytes = binary.BigEndian.Uint32(v)
			case fieldFirstSw:
				if !d.Boot.IsZero() {
					r.First = d.Boot.Add(time.Duration(binary.BigEndian.Uint32(v)) * time.Millisecond)
				}
			case fieldLastSw:
				if !d.Boot.IsZero() {
					r.Last = d.Boot.Add(time.Duration(binary.BigEndian.Uint32(v)) * time.Millisecond)
				}
			}
			p += int(f[1])
		}
		out = append(out, r)
	}
	return out, nil
}
