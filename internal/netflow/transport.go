package netflow

import (
	"fmt"
	"net"
	"sync"
	"time"
)

// Exporter ships flow records to a collector over UDP, the way edge
// routers export NetFlow v9 in production: templates re-sent periodically,
// data packets filled up to the UDP limit.
type Exporter struct {
	conn net.Conn
	enc  Encoder
	// TemplateEvery re-sends the template after this many data packets
	// (default 20; v9 collectors must tolerate data before template).
	TemplateEvery int

	mu          sync.Mutex
	sinceTmpl   int
	sentPackets int64
	sentRecords int64
}

// NewExporter dials the collector address (e.g. "127.0.0.1:2055").
func NewExporter(addr string, sourceID uint32, boot time.Time) (*Exporter, error) {
	conn, err := net.Dial("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("netflow: dial collector: %w", err)
	}
	return &Exporter{
		conn:          conn,
		enc:           Encoder{SourceID: sourceID, Boot: boot},
		TemplateEvery: 20,
	}, nil
}

// Export sends the records, chunked into maximal UDP packets, re-sending
// the template as configured. It returns the number of packets sent.
func (e *Exporter) Export(now time.Time, records []Record) (int, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	packets := 0
	send := func(pkt []byte) error {
		if _, err := e.conn.Write(pkt); err != nil {
			return fmt.Errorf("netflow: export: %w", err)
		}
		packets++
		e.sentPackets++
		return nil
	}
	if e.sinceTmpl == 0 {
		if err := send(e.enc.EncodeTemplate(now)); err != nil {
			return packets, err
		}
	}
	for len(records) > 0 {
		pkt, n := e.enc.EncodeData(now, records)
		if err := send(pkt); err != nil {
			return packets, err
		}
		e.sentRecords += int64(n)
		records = records[n:]
		e.sinceTmpl++
		if e.TemplateEvery > 0 && e.sinceTmpl >= e.TemplateEvery {
			e.sinceTmpl = 0
			if err := send(e.enc.EncodeTemplate(now)); err != nil {
				return packets, err
			}
		}
	}
	return packets, nil
}

// Stats returns packets and records sent so far.
func (e *Exporter) Stats() (packets, records int64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.sentPackets, e.sentRecords
}

// Close releases the socket.
func (e *Exporter) Close() error { return e.conn.Close() }

// Collector receives v9 export packets on a UDP socket and hands decoded
// records to a handler. One goroutine reads; the handler runs on it, so a
// slow handler backpressures into the socket buffer like a real collector.
type Collector struct {
	pc      net.PacketConn
	dec     *Decoder
	handler func([]Record)

	wg     sync.WaitGroup
	mu     sync.Mutex
	closed bool
	// DecodeErrors counts malformed packets (dropped, like production
	// collectors do).
	decodeErrors int64
}

// NewCollector listens on addr ("127.0.0.1:0" picks a free port) and
// starts the receive loop. boot must match the exporters' boot for
// timestamp reconstruction (zero disables it).
func NewCollector(addr string, boot time.Time, handler func([]Record)) (*Collector, error) {
	pc, err := net.ListenPacket("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("netflow: listen: %w", err)
	}
	dec := NewDecoder()
	dec.Boot = boot
	c := &Collector{pc: pc, dec: dec, handler: handler}
	c.wg.Add(1)
	go c.loop()
	return c, nil
}

// Addr returns the bound address, for exporters to dial.
func (c *Collector) Addr() string { return c.pc.LocalAddr().String() }

func (c *Collector) loop() {
	defer c.wg.Done()
	buf := make([]byte, 65535)
	for {
		n, _, err := c.pc.ReadFrom(buf)
		if err != nil {
			return // socket closed
		}
		recs, err := c.dec.Decode(buf[:n])
		if err != nil {
			c.mu.Lock()
			c.decodeErrors++
			c.mu.Unlock()
			continue
		}
		if len(recs) > 0 && c.handler != nil {
			c.handler(recs)
		}
	}
}

// DecodeErrors returns the count of dropped malformed packets.
func (c *Collector) DecodeErrors() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.decodeErrors
}

// Close stops the receive loop and releases the socket. Safe to call
// multiple times.
func (c *Collector) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	err := c.pc.Close()
	c.wg.Wait()
	return err
}
