package netflow

import (
	"math/rand"
	"sort"
	"time"

	"crossborder/internal/dns"
	"crossborder/internal/geodata"
	"crossborder/internal/netsim"
)

// ISPProfile describes one of the four European ISPs of Table 7.
type ISPProfile struct {
	Name    string
	Country geodata.Country
	// Subscribers in millions (households for broadband).
	SubscribersM float64
	// Mobile marks primarily-mobile operators. Mobile users rely on the
	// carrier's resolver and get mapped to nearby tracking servers;
	// broadband users increasingly use third-party DNS (§7.3).
	Mobile bool
	// ThirdPartyDNSShare is the fraction of subscribers using Google
	// DNS/Quad9/etc., which defeats geo-aware server selection.
	ThirdPartyDNSShare float64
	// DailySampledFlowsM is the rough number of sampled tracking flows
	// per day in millions (Table 8's magnitude).
	DailySampledFlowsM float64
}

// DefaultISPs reproduces Table 7's four networks.
func DefaultISPs() []ISPProfile {
	return []ISPProfile{
		{Name: "DE-Broadband", Country: "DE", SubscribersM: 15, Mobile: false, ThirdPartyDNSShare: 0.22, DailySampledFlowsM: 1057},
		{Name: "DE-Mobile", Country: "DE", SubscribersM: 40, Mobile: true, ThirdPartyDNSShare: 0.05, DailySampledFlowsM: 70},
		{Name: "PL", Country: "PL", SubscribersM: 11, Mobile: false, ThirdPartyDNSShare: 0.20, DailySampledFlowsM: 13.8},
		{Name: "HU", Country: "HU", SubscribersM: 6, Mobile: true, ThirdPartyDNSShare: 0.08, DailySampledFlowsM: 43},
	}
}

// FQDNWeight is the popularity of one tracking FQDN, taken from the
// extension dataset's request counts: the ISP's subscribers hit the same
// services in roughly the same proportions.
type FQDNWeight struct {
	FQDN   string
	Weight float64
}

// DaySynthesis is the aggregate outcome of one ISP-day: sampled tracking
// flow counts per destination tracker IP. At Table 8 scale (10⁹ sampled
// flows) synthesizing aggregates is the only tractable representation;
// the per-record codec above is exercised at small scale by the scanner
// and the examples.
type DaySynthesis struct {
	ISP          ISPProfile
	Date         time.Time
	SampledFlows int64
	// PerIP maps each tracker IP to its sampled flow count.
	PerIP map[netsim.IP]int64
}

// Synthesizer produces ISP-day aggregates by replaying the DNS behaviour
// of the ISP's subscriber base over the tracking FQDN popularity profile.
type Synthesizer struct {
	Resolver *dns.Server
	// ResolutionSamples is how many resolutions approximate one FQDN's
	// destination distribution (default 24).
	ResolutionSamples int
}

// Synthesize generates one ISP-day. The per-FQDN flow budget is
// distributed over the destination IPs the ISP's users would actually be
// handed: mostly geo-aware answers for the ISP's country, mixed with
// location-blind answers for the third-party-DNS share of subscribers.
func (s *Synthesizer) Synthesize(rng *rand.Rand, isp ISPProfile, date time.Time, fqdns []FQDNWeight) DaySynthesis {
	out := DaySynthesis{ISP: isp, Date: date, PerIP: make(map[netsim.IP]int64)}
	total := int64(isp.DailySampledFlowsM * 1e6)
	// Mild day-to-day variation (Table 8 varies ~±10% across dates).
	total = int64(float64(total) * (0.92 + 0.16*rng.Float64()))

	var weightSum float64
	for _, f := range fqdns {
		weightSum += f.Weight
	}
	if weightSum == 0 || total <= 0 {
		return out
	}
	samples := s.ResolutionSamples
	if samples <= 0 {
		samples = 24
	}

	var assigned int64
	for _, f := range fqdns {
		budget := int64(float64(total) * f.Weight / weightSum)
		if budget == 0 {
			continue
		}
		// Approximate the destination distribution with repeated
		// resolutions: carrier-resolver users (geo-aware) and
		// third-party-DNS users (location-blind).
		nThird := int(float64(samples) * isp.ThirdPartyDNSShare)
		nLocal := samples - nThird
		dests := make([]netsim.IP, 0, samples)
		for i := 0; i < nLocal; i++ {
			if ip, err := s.Resolver.Resolve(rng, f.FQDN, isp.Country, date); err == nil {
				dests = append(dests, ip)
			}
		}
		for i := 0; i < nThird; i++ {
			// A third-party resolver's vantage hides the user: model as
			// resolution from a random large market.
			vantage := thirdPartyVantages[rng.Intn(len(thirdPartyVantages))]
			if ip, err := s.Resolver.Resolve(rng, f.FQDN, vantage, date); err == nil {
				dests = append(dests, ip)
			}
		}
		if len(dests) == 0 {
			continue
		}
		per := budget / int64(len(dests))
		rem := budget - per*int64(len(dests))
		for i, ip := range dests {
			n := per
			if int64(i) < rem {
				n++
			}
			if n > 0 {
				out.PerIP[ip] += n
				assigned += n
			}
		}
	}
	out.SampledFlows = assigned
	return out
}

// thirdPartyVantages approximates where public resolvers' queries appear
// to originate from (EDNS client subnet is rarely passed through).
var thirdPartyVantages = []geodata.Country{"US", "US", "IE", "NL", "DE", "GB", "FR"}

// TopIPs returns the n busiest destination IPs of the day.
func (d DaySynthesis) TopIPs(n int) []netsim.IP {
	type kv struct {
		ip netsim.IP
		n  int64
	}
	all := make([]kv, 0, len(d.PerIP))
	for ip, c := range d.PerIP {
		all = append(all, kv{ip, c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].n != all[j].n {
			return all[i].n > all[j].n
		}
		return all[i].ip < all[j].ip
	})
	if n > len(all) {
		n = len(all)
	}
	out := make([]netsim.IP, 0, n)
	for _, kv := range all[:n] {
		out = append(out, kv.ip)
	}
	return out
}

// TrackerMatcher is the predicate the scanner uses: does this IP belong
// to the tracker inventory at time t? (trackerdb.Inventory.IsTrackingIP
// satisfies it.)
type TrackerMatcher func(ip netsim.IP, t time.Time) bool

// ScanResult summarizes a scan of flow records against the tracker list.
type ScanResult struct {
	Records    int64
	WebRecords int64
	Tracking   int64
	Encrypted  int64 // port-443 share of tracking flows (§7.2: >83%)
	PerIP      map[netsim.IP]int64
	PerInputIf map[uint16]int64
}

// Scan matches records against the tracker inventory the way §7.2
// describes: only user-facing interfaces, web ports, and either flow
// endpoint may be the tracker. Subscriber addresses never leave the
// function — only per-tracker-IP counters, mirroring the paper's
// anonymization (user IPs replaced by the ISP's country).
func Scan(records []Record, userIfaces map[uint16]bool, match TrackerMatcher) ScanResult {
	res := ScanResult{PerIP: make(map[netsim.IP]int64), PerInputIf: make(map[uint16]int64)}
	for _, r := range records {
		if userIfaces != nil && !userIfaces[r.InputIf] && !userIfaces[r.OutputIf] {
			continue
		}
		res.Records++
		if !r.IsWeb() {
			continue
		}
		res.WebRecords++
		var trackerIP netsim.IP
		switch {
		case match(r.DstIP, r.Last):
			trackerIP = r.DstIP
		case match(r.SrcIP, r.Last):
			trackerIP = r.SrcIP
		default:
			continue
		}
		res.Tracking++
		res.PerIP[trackerIP]++
		res.PerInputIf[r.InputIf]++
		if r.DstPort == 443 || r.SrcPort == 443 {
			res.Encrypted++
		}
	}
	return res
}
