package netflow

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestDecoderNeverPanics feeds arbitrary byte soup to the decoder; it may
// error, but it must never panic or return phantom records — the property
// a collector facing the open Internet needs.
func TestDecoderNeverPanics(t *testing.T) {
	dec := NewDecoder()
	f := func(data []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		recs, err := dec.Decode(data)
		if err == nil && len(data) < 20 && len(recs) > 0 {
			return false // records cannot come from a sub-header packet
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestDecoderSurvivesCorruptedValidPackets flips random bytes in valid
// packets: decode must stay panic-free.
func TestDecoderSurvivesCorruptedValidPackets(t *testing.T) {
	enc := &Encoder{SourceID: 3, Boot: boot}
	dec := NewDecoder()
	if _, err := dec.Decode(enc.EncodeTemplate(now)); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	base, _ := enc.EncodeData(now, sampleRecords(20))
	for i := 0; i < 3000; i++ {
		pkt := make([]byte, len(base))
		copy(pkt, base)
		for j, n := 0, 1+rng.Intn(5); j < n; j++ {
			pkt[rng.Intn(len(pkt))] ^= byte(1 + rng.Intn(255))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on corrupted packet: %v", r)
				}
			}()
			dec.Decode(pkt) //nolint:errcheck // errors are expected here
		}()
	}
}
