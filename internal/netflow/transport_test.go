package netflow

import (
	"sync"
	"testing"
	"time"

	"crossborder/internal/netsim"
)

// startPair wires an exporter to a collector over loopback UDP.
func startPair(t *testing.T, handler func([]Record)) (*Exporter, *Collector) {
	t.Helper()
	col, err := NewCollector("127.0.0.1:0", boot, handler)
	if err != nil {
		t.Skipf("UDP loopback unavailable: %v", err)
	}
	exp, err := NewExporter(col.Addr(), 42, boot)
	if err != nil {
		col.Close()
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() {
		exp.Close()
		col.Close()
	})
	return exp, col
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool) bool {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(5 * time.Millisecond)
	}
	return cond()
}

func TestUDPExportCollect(t *testing.T) {
	var mu sync.Mutex
	var got []Record
	exp, col := startPair(t, func(recs []Record) {
		mu.Lock()
		got = append(got, recs...)
		mu.Unlock()
	})

	recs := sampleRecords(500)
	pkts, err := exp.Export(now, recs)
	if err != nil {
		t.Fatal(err)
	}
	if pkts < 2 {
		t.Errorf("packets = %d, want template + data", pkts)
	}
	ok := waitFor(t, 2*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) == len(recs)
	})
	if !ok {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		t.Fatalf("collected %d of %d records", n, len(recs))
	}
	mu.Lock()
	defer mu.Unlock()
	for i, r := range got {
		if r.SrcIP != recs[i].SrcIP || r.DstIP != recs[i].DstIP || r.Packets != recs[i].Packets {
			t.Fatalf("record %d corrupted in transit", i)
		}
	}
	if col.DecodeErrors() != 0 {
		t.Errorf("decode errors = %d", col.DecodeErrors())
	}
	sentPkts, sentRecs := exp.Stats()
	if sentRecs != int64(len(recs)) || sentPkts != int64(pkts) {
		t.Errorf("stats = %d pkts %d recs", sentPkts, sentRecs)
	}
}

func TestUDPTemplateResend(t *testing.T) {
	var mu sync.Mutex
	count := 0
	exp, _ := startPair(t, func(recs []Record) {
		mu.Lock()
		count += len(recs)
		mu.Unlock()
	})
	exp.TemplateEvery = 2

	// Many small exports force periodic template re-sends.
	for i := 0; i < 10; i++ {
		if _, err := exp.Export(now, sampleRecords(3)); err != nil {
			t.Fatal(err)
		}
	}
	if !waitFor(t, 2*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return count == 30
	}) {
		t.Fatalf("collected %d of 30", count)
	}
}

func TestUDPCollectorDropsGarbage(t *testing.T) {
	exp, col := startPair(t, nil)
	// Send garbage straight down the exporter's socket.
	if _, err := exp.conn.Write([]byte{0, 5, 0, 0, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if !waitFor(t, 2*time.Second, func() bool { return col.DecodeErrors() == 1 }) {
		t.Errorf("decode errors = %d, want 1", col.DecodeErrors())
	}
}

func TestUDPCollectorCloseIdempotent(t *testing.T) {
	_, col := startPair(t, nil)
	if err := col.Close(); err != nil {
		t.Fatal(err)
	}
	if err := col.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

func TestUDPScanIntegration(t *testing.T) {
	// End-to-end: export records, collect them, scan against a matcher.
	var mu sync.Mutex
	var collected []Record
	exp, _ := startPair(t, func(recs []Record) {
		mu.Lock()
		collected = append(collected, recs...)
		mu.Unlock()
	})
	recs := sampleRecords(70)
	if _, err := exp.Export(now, recs); err != nil {
		t.Fatal(err)
	}
	if !waitFor(t, 2*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(collected) == len(recs)
	}) {
		t.Fatal("records did not arrive")
	}
	mu.Lock()
	defer mu.Unlock()
	res := Scan(collected, map[uint16]bool{10: true}, func(ip netsim.IP, _ time.Time) bool {
		return ip >= 0x10000000 && ip <= 0x10000003
	})
	if res.Tracking == 0 {
		t.Error("scan found no tracking flows after transport")
	}
}
