// Package netflow provides the ISP-scale measurement substrate of §7: a
// NetFlow v9-style binary codec (templates, export packets), an exporter
// and collector, deterministic packet sampling, a scanner that matches
// flow records against the tracker IP inventory, and an aggregate
// synthesizer that produces ISP-day sampled tracking-flow counts at the
// billion-flow scale of Table 8 without materializing individual flows.
package netflow

import (
	"time"

	"crossborder/internal/netsim"
)

// Protocol numbers for the flows the study sees (§7.2: >99.5% of tracking
// traffic is TCP/UDP on ports 80/443).
const (
	ProtoTCP = 6
	ProtoUDP = 17
)

// Record is one unidirectional flow record as exported by an edge router.
type Record struct {
	// First and Last bound the flow's activity (router uptime-relative in
	// v9; we carry wall-clock for convenience).
	First, Last time.Time
	// RouterID and the SNMP interface indices identify the exporting
	// edge; the study only uses internal (user-facing) interfaces.
	RouterID uint32
	InputIf  uint16
	OutputIf uint16
	Proto    uint8
	TOS      uint8
	SrcIP    netsim.IP
	DstIP    netsim.IP
	SrcPort  uint16
	DstPort  uint16
	Packets  uint32
	Bytes    uint32
}

// FlowKey is the 5-tuple identity of a flow, usable as a map key,
// following the gopacket Flow idiom.
type FlowKey struct {
	SrcIP   netsim.IP
	DstIP   netsim.IP
	SrcPort uint16
	DstPort uint16
	Proto   uint8
}

// Key returns the record's 5-tuple.
func (r Record) Key() FlowKey {
	return FlowKey{r.SrcIP, r.DstIP, r.SrcPort, r.DstPort, r.Proto}
}

// Reverse returns the key with endpoints swapped.
func (k FlowKey) Reverse() FlowKey {
	return FlowKey{k.DstIP, k.SrcIP, k.DstPort, k.SrcPort, k.Proto}
}

// FastHash returns a symmetric hash: a flow and its reverse shard
// together, so both directions of a connection land on one worker.
func (k FlowKey) FastHash() uint64 {
	a := mix(uint64(k.SrcIP)<<16 | uint64(k.SrcPort))
	b := mix(uint64(k.DstIP)<<16 | uint64(k.DstPort))
	return (a ^ b) + uint64(k.Proto)*0x9e3779b97f4a7c15
}

func mix(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// IsWeb reports whether the flow looks like web traffic (ports 80/443
// over TCP or UDP — QUIC counts, §7.2).
func (r Record) IsWeb() bool {
	if r.Proto != ProtoTCP && r.Proto != ProtoUDP {
		return false
	}
	p := r.DstPort
	q := r.SrcPort
	return p == 80 || p == 443 || q == 80 || q == 443
}

// Sampler implements deterministic 1-in-N flow sampling, the constant
// NetFlow sampling rate of §7.2.
type Sampler struct {
	// N is the sampling denominator (1 in N). N <= 1 samples everything.
	N       int
	counter uint64
}

// Sample reports whether this flow is exported.
func (s *Sampler) Sample() bool {
	if s.N <= 1 {
		return true
	}
	s.counter++
	return s.counter%uint64(s.N) == 0
}
