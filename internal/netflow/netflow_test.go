package netflow

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"crossborder/internal/dns"
	"crossborder/internal/geodata"
	"crossborder/internal/netsim"
)

var (
	boot = time.Date(2018, 4, 3, 0, 0, 0, 0, time.UTC)
	now  = time.Date(2018, 4, 4, 12, 0, 0, 0, time.UTC)
)

func sampleRecords(n int) []Record {
	out := make([]Record, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, Record{
			First: now.Add(-time.Minute), Last: now,
			RouterID: 1, InputIf: 10, OutputIf: 20,
			Proto: ProtoTCP, TOS: 0,
			SrcIP: netsim.IP(0x60000000 + uint32(i)), DstIP: netsim.IP(0x10000000 + uint32(i%7)),
			SrcPort: uint16(40000 + i), DstPort: 443,
			Packets: uint32(i + 1), Bytes: uint32(100 * (i + 1)),
		})
	}
	return out
}

func TestV9RoundTrip(t *testing.T) {
	enc := &Encoder{SourceID: 7, Boot: boot}
	dec := NewDecoder()
	dec.Boot = boot

	recs := sampleRecords(5)
	tmplPkt := enc.EncodeTemplate(now)
	if _, err := dec.Decode(tmplPkt); err != nil {
		t.Fatalf("template decode: %v", err)
	}
	dataPkt, n := enc.EncodeData(now, recs)
	if n != 5 {
		t.Fatalf("packed %d of 5", n)
	}
	got, err := dec.Decode(dataPkt)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("decoded %d records", len(got))
	}
	for i, r := range got {
		want := recs[i]
		if r.SrcIP != want.SrcIP || r.DstIP != want.DstIP ||
			r.SrcPort != want.SrcPort || r.DstPort != want.DstPort ||
			r.Proto != want.Proto || r.Packets != want.Packets ||
			r.Bytes != want.Bytes || r.InputIf != want.InputIf ||
			r.OutputIf != want.OutputIf {
			t.Errorf("record %d: got %+v want %+v", i, r, want)
		}
		if !r.First.Equal(want.First.Truncate(time.Millisecond)) {
			t.Errorf("record %d First = %v, want %v", i, r.First, want.First)
		}
	}
}

func TestV9DataBeforeTemplateSkipped(t *testing.T) {
	enc := &Encoder{SourceID: 7, Boot: boot}
	dec := NewDecoder()
	dataPkt, _ := enc.EncodeData(now, sampleRecords(3))
	got, err := dec.Decode(dataPkt)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("decoded %d records without template", len(got))
	}
}

func TestV9TemplatePerSource(t *testing.T) {
	encA := &Encoder{SourceID: 1, Boot: boot}
	encB := &Encoder{SourceID: 2, Boot: boot}
	dec := NewDecoder()
	if _, err := dec.Decode(encA.EncodeTemplate(now)); err != nil {
		t.Fatal(err)
	}
	// Source B's data must not decode with source A's template.
	pkt, _ := encB.EncodeData(now, sampleRecords(2))
	got, _ := dec.Decode(pkt)
	if len(got) != 0 {
		t.Error("template leaked across source IDs")
	}
}

func TestV9Errors(t *testing.T) {
	dec := NewDecoder()
	if _, err := dec.Decode([]byte{1, 2, 3}); err == nil {
		t.Error("short packet must error")
	}
	bad := make([]byte, 20)
	bad[1] = 5 // version 5
	if _, err := dec.Decode(bad); err == nil {
		t.Error("wrong version must error")
	}
	// Corrupt flowset length.
	enc := &Encoder{SourceID: 7, Boot: boot}
	pkt := enc.EncodeTemplate(now)
	pkt[22] = 0xFF
	pkt[23] = 0xFF
	if _, err := dec.Decode(pkt); err == nil {
		t.Error("bad flowset length must error")
	}
}

func TestV9PacketSizeLimit(t *testing.T) {
	enc := &Encoder{SourceID: 7, Boot: boot}
	recs := sampleRecords(3000)
	pkt, n := enc.EncodeData(now, recs)
	if n >= 3000 {
		t.Errorf("packed %d records; 64KB limit must cap it", n)
	}
	if len(pkt) > 65507 {
		t.Errorf("packet %d bytes exceeds UDP maximum", len(pkt))
	}
	dec := NewDecoder()
	dec.Decode(enc.EncodeTemplate(now))
	got, err := dec.Decode(pkt)
	if err != nil || len(got) != n {
		t.Errorf("decoded %d of %d, err=%v", len(got), n, err)
	}
}

func TestV9RoundTripProperty(t *testing.T) {
	enc := &Encoder{SourceID: 9, Boot: boot}
	dec := NewDecoder()
	dec.Boot = boot
	dec.Decode(enc.EncodeTemplate(now))
	f := func(src, dst uint32, sp, dp uint16, pkts uint32) bool {
		rec := Record{
			First: now, Last: now,
			InputIf: 1, OutputIf: 2, Proto: ProtoUDP,
			SrcIP: netsim.IP(src), DstIP: netsim.IP(dst),
			SrcPort: sp, DstPort: dp, Packets: pkts, Bytes: pkts * 100,
		}
		pkt, n := enc.EncodeData(now, []Record{rec})
		if n != 1 {
			return false
		}
		got, err := dec.Decode(pkt)
		if err != nil || len(got) != 1 {
			return false
		}
		g := got[0]
		return g.SrcIP == rec.SrcIP && g.DstIP == rec.DstIP &&
			g.SrcPort == rec.SrcPort && g.DstPort == rec.DstPort &&
			g.Packets == rec.Packets && g.Bytes == rec.Bytes
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFlowKey(t *testing.T) {
	r := sampleRecords(1)[0]
	k := r.Key()
	if k.Reverse().Reverse() != k {
		t.Error("double reverse must be identity")
	}
	if k.FastHash() != k.Reverse().FastHash() {
		t.Error("FastHash must be symmetric")
	}
	m := map[FlowKey]int{k: 1}
	if m[r.Key()] != 1 {
		t.Error("FlowKey not usable as map key")
	}
}

func TestIsWeb(t *testing.T) {
	web := Record{Proto: ProtoTCP, DstPort: 443}
	if !web.IsWeb() {
		t.Error("tcp/443 must be web")
	}
	quic := Record{Proto: ProtoUDP, DstPort: 443}
	if !quic.IsWeb() {
		t.Error("udp/443 (QUIC) must be web")
	}
	rev := Record{Proto: ProtoTCP, SrcPort: 80, DstPort: 50000}
	if !rev.IsWeb() {
		t.Error("return direction must be web")
	}
	ssh := Record{Proto: ProtoTCP, DstPort: 22}
	if ssh.IsWeb() {
		t.Error("tcp/22 must not be web")
	}
	icmp := Record{Proto: 1, DstPort: 443}
	if icmp.IsWeb() {
		t.Error("icmp must not be web")
	}
}

func TestSampler(t *testing.T) {
	s := &Sampler{N: 100}
	kept := 0
	for i := 0; i < 100000; i++ {
		if s.Sample() {
			kept++
		}
	}
	if kept != 1000 {
		t.Errorf("kept %d of 100000 at 1:100", kept)
	}
	all := &Sampler{N: 1}
	if !all.Sample() || !all.Sample() {
		t.Error("N<=1 must keep everything")
	}
}

func TestScan(t *testing.T) {
	recs := sampleRecords(20)
	// Mark IPs 0x10000000..0x10000002 as trackers.
	match := func(ip netsim.IP, _ time.Time) bool {
		return ip >= 0x10000000 && ip <= 0x10000002
	}
	res := Scan(recs, map[uint16]bool{10: true}, match)
	if res.Records != 20 || res.WebRecords != 20 {
		t.Fatalf("records=%d web=%d", res.Records, res.WebRecords)
	}
	// i%7 in {0,1,2} -> 3 of every 7 records.
	if res.Tracking != 9 {
		t.Errorf("tracking = %d, want 9", res.Tracking)
	}
	if res.Encrypted != res.Tracking {
		t.Errorf("all sample flows are 443; encrypted=%d", res.Encrypted)
	}
	// Interface filter: nothing on user ifaces.
	res2 := Scan(recs, map[uint16]bool{99: true}, match)
	if res2.Records != 0 {
		t.Error("interface filter leaked records")
	}
	// Reverse-direction match.
	rev := []Record{{Proto: ProtoTCP, SrcIP: 0x10000001, SrcPort: 443, DstIP: 0x60000001, DstPort: 55555, InputIf: 10}}
	res3 := Scan(rev, map[uint16]bool{10: true}, match)
	if res3.Tracking != 1 {
		t.Error("server-to-user direction must match")
	}
}

func TestDefaultISPs(t *testing.T) {
	isps := DefaultISPs()
	if len(isps) != 4 {
		t.Fatalf("ISPs = %d, want 4 (Table 7)", len(isps))
	}
	names := map[string]ISPProfile{}
	for _, p := range isps {
		names[p.Name] = p
	}
	if names["DE-Broadband"].SubscribersM != 15 || names["DE-Mobile"].SubscribersM != 40 {
		t.Error("German subscriber counts wrong")
	}
	if !names["DE-Mobile"].Mobile || !names["HU"].Mobile {
		t.Error("mobile flags wrong")
	}
	if names["DE-Broadband"].ThirdPartyDNSShare <= names["DE-Mobile"].ThirdPartyDNSShare {
		t.Error("broadband must have higher third-party DNS share (§7.3)")
	}
}

func synthRig(t *testing.T) (*dns.Server, []FQDNWeight) {
	t.Helper()
	start := time.Date(2017, 9, 1, 0, 0, 0, 0, time.UTC)
	end := time.Date(2018, 8, 1, 0, 0, 0, 0, time.UTC)
	srv := dns.NewServer(nil)
	sv := func(ip uint32, c string) dns.ServerIP {
		return dns.ServerIP{IP: netsim.IP(ip), Country: geodata.Country(c), From: start, To: end}
	}
	// A tracker with DE + US presence and one US-only tracker.
	srv.Register("t1.example.com", "t1", dns.PolicyNearest, time.Minute, []dns.ServerIP{
		sv(0x10000001, "DE"), sv(0x10000002, "US"),
	})
	srv.Register("t2.example.com", "t2", dns.PolicyNearest, time.Minute, []dns.ServerIP{
		sv(0x10000003, "US"),
	})
	return srv, []FQDNWeight{{FQDN: "t1.example.com", Weight: 3}, {FQDN: "t2.example.com", Weight: 1}}
}

func TestSynthesize(t *testing.T) {
	srv, fqdns := synthRig(t)
	s := &Synthesizer{Resolver: srv}
	isp := ISPProfile{Name: "DE-Test", Country: "DE", DailySampledFlowsM: 0.01, ThirdPartyDNSShare: 0.3}
	day := s.Synthesize(rand.New(rand.NewSource(1)), isp, now, fqdns)

	if day.SampledFlows == 0 {
		t.Fatal("no flows")
	}
	var sum int64
	for _, n := range day.PerIP {
		sum += n
	}
	if sum != day.SampledFlows {
		t.Errorf("PerIP sum %d != SampledFlows %d", sum, day.SampledFlows)
	}
	// t1's German users get the DE server through the carrier resolver;
	// the US-only t2 always leaks.
	de := day.PerIP[0x10000001]
	usT1 := day.PerIP[0x10000002]
	if de == 0 {
		t.Error("no flows to the DE server")
	}
	if de <= usT1 {
		t.Errorf("DE server (%d) must dominate t1's US server (%d) for a German ISP", de, usT1)
	}
	if day.PerIP[0x10000003] == 0 {
		t.Error("US-only tracker must still receive flows")
	}
	// Budget split ~3:1 between t1 and t2.
	t1 := de + usT1
	t2 := day.PerIP[0x10000003]
	ratio := float64(t1) / float64(t2)
	if ratio < 2 || ratio > 4.5 {
		t.Errorf("t1:t2 = %.2f, want ~3", ratio)
	}
}

func TestSynthesizeMobileVsBroadband(t *testing.T) {
	srv, fqdns := synthRig(t)
	s := &Synthesizer{Resolver: srv, ResolutionSamples: 50}
	rng := rand.New(rand.NewSource(2))
	mobile := s.Synthesize(rng, ISPProfile{Name: "m", Country: "DE", DailySampledFlowsM: 0.01, ThirdPartyDNSShare: 0.05}, now, fqdns)
	broadband := s.Synthesize(rng, ISPProfile{Name: "b", Country: "DE", DailySampledFlowsM: 0.01, ThirdPartyDNSShare: 0.40}, now, fqdns)
	confinement := func(d DaySynthesis) float64 {
		return float64(d.PerIP[0x10000001]) / float64(d.PerIP[0x10000001]+d.PerIP[0x10000002])
	}
	if confinement(mobile) <= confinement(broadband) {
		t.Errorf("mobile confinement %.3f must exceed broadband %.3f (§7.3)",
			confinement(mobile), confinement(broadband))
	}
}

func TestTopIPs(t *testing.T) {
	d := DaySynthesis{PerIP: map[netsim.IP]int64{1: 10, 2: 30, 3: 20}}
	top := d.TopIPs(2)
	if len(top) != 2 || top[0] != 2 || top[1] != 3 {
		t.Errorf("TopIPs = %v", top)
	}
	if got := d.TopIPs(10); len(got) != 3 {
		t.Errorf("TopIPs(10) = %v", got)
	}
}
