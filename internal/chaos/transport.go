package chaos

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// TransportFaults sets the per-request probability of each network
// fault a Transport injects. Zero values disable a fault.
type TransportFaults struct {
	// Latency delays the request by up to MaxLatency before it is sent.
	Latency float64
	// MaxLatency caps an injected delay (0 = 20ms).
	MaxLatency time.Duration
	// Reset drops the connection before the request reaches the server:
	// the server never sees it, the caller gets a transport error.
	Reset float64
	// LostResponse delivers the request — the server applies it — then
	// drops the response, so the caller must retry something that
	// already happened. The collector's sequence dedup is what makes
	// that safe.
	LostResponse float64
	// Truncate cuts the response body short at a stream-chosen point.
	Truncate float64
	// Corrupt flips one stream-chosen byte of the response body.
	Corrupt float64
	// Err503 answers with a fabricated 503 (Retry-After: 1) without
	// contacting the server; one hit starts a burst of BurstLen
	// consecutive 503s, the way a drowning backend actually fails.
	Err503 float64
	// BurstLen is the length of a 503 burst (0 = 3).
	BurstLen int
}

func (f TransportFaults) withDefaults() TransportFaults {
	if f.MaxLatency <= 0 {
		f.MaxLatency = 20 * time.Millisecond
	}
	if f.BurstLen <= 0 {
		f.BurstLen = 3
	}
	return f
}

// Transport is an http.RoundTripper that injects seeded network faults
// around a base transport. Each fault kind draws from its own
// (seed, prefix+"/net.<kind>") site, so a prefix names one logical
// link ("client", "fanin") and its decision streams are independent
// of every other link's.
type Transport struct {
	base   http.RoundTripper
	inj    *Injector
	faults TransportFaults

	latency, reset, lost, truncate, corrupt, err503 *Site

	burst struct {
		mu   chan struct{} // 1-slot semaphore; avoids a mutex copy hazard
		left int
	}
}

// NewTransport wraps base (nil = http.DefaultTransport) with faults
// drawn from inj under the given site prefix.
func NewTransport(inj *Injector, prefix string, faults TransportFaults, base http.RoundTripper) *Transport {
	if base == nil {
		base = http.DefaultTransport
	}
	t := &Transport{
		base:     base,
		inj:      inj,
		faults:   faults.withDefaults(),
		latency:  inj.Site(prefix + "/net.latency"),
		reset:    inj.Site(prefix + "/net.reset"),
		lost:     inj.Site(prefix + "/net.lost-response"),
		truncate: inj.Site(prefix + "/net.truncate"),
		corrupt:  inj.Site(prefix + "/net.corrupt"),
		err503:   inj.Site(prefix + "/net.503"),
	}
	t.burst.mu = make(chan struct{}, 1)
	return t
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	if t.latency.Hit(t.faults.Latency) {
		time.Sleep(time.Duration(t.latency.Intn(int(t.faults.MaxLatency))) + time.Millisecond)
	}

	if t.synth503() {
		if req.Body != nil {
			req.Body.Close()
		}
		body := "chaos: injected 503 burst\n"
		resp := &http.Response{
			Status:        "503 Service Unavailable",
			StatusCode:    http.StatusServiceUnavailable,
			Proto:         "HTTP/1.1",
			ProtoMajor:    1,
			ProtoMinor:    1,
			Header:        http.Header{"Retry-After": {"1"}, "Content-Type": {"text/plain"}},
			Body:          io.NopCloser(strings.NewReader(body)),
			ContentLength: int64(len(body)),
			Request:       req,
		}
		return resp, nil
	}

	if t.reset.Hit(t.faults.Reset) {
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, fmt.Errorf("%w: %s: connection reset before send", ErrInjected, t.reset.Name())
	}

	resp, err := t.base.RoundTrip(req)
	if err != nil {
		return nil, err
	}

	if t.lost.Hit(t.faults.LostResponse) {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, fmt.Errorf("%w: %s: response lost after server applied request", ErrInjected, t.lost.Name())
	}

	mangleTrunc := t.truncate.Hit(t.faults.Truncate)
	mangleCorrupt := t.corrupt.Hit(t.faults.Corrupt)
	if mangleTrunc || mangleCorrupt {
		raw, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			return nil, rerr
		}
		if mangleTrunc && len(raw) > 0 {
			raw = raw[:t.truncate.Intn(len(raw))]
		}
		if mangleCorrupt && len(raw) > 0 {
			raw[t.corrupt.Intn(len(raw))] ^= 0xA5
		}
		resp.Body = io.NopCloser(bytes.NewReader(raw))
		resp.ContentLength = int64(len(raw))
		resp.Header.Del("Content-Length")
	}
	return resp, nil
}

// synth503 reports whether this request is absorbed by a fabricated
// 503, starting a new burst when the site fires.
func (t *Transport) synth503() bool {
	if t.inj.Healed() {
		return false // a heal also cuts a burst short
	}
	t.burst.mu <- struct{}{}
	defer func() { <-t.burst.mu }()
	if t.burst.left > 0 {
		t.burst.left--
		return true
	}
	if t.err503.Hit(t.faults.Err503) {
		t.burst.left = t.faults.BurstLen - 1
		return true
	}
	return false
}
