// Package chaos is the deterministic fault-injection layer behind the
// cluster's robustness tests. It exposes two seams the production code
// already threads: Transport wraps an http.RoundTripper and injects the
// partial network failures crowdsourced uploads actually see (latency,
// connection resets, responses lost after the server applied the
// request, truncated or corrupted bodies, 5xx bursts), and FS wraps the
// filesystem under the WAL and checkpoint writer (short writes, fsync
// failures, torn renames).
//
// Every fault decision is drawn from a splitmix64 stream keyed by
// (seed, site), where a site is one named injection point such as
// "c0/fs.short-write". Two injectors built from the same seed produce
// identical per-site decision sequences, so a chaos run is reproduced
// by its seed alone; with concurrent callers the interleaving decides
// which request absorbs which draw, but the multiset of injected
// faults per site is still exactly the seeded sequence.
//
// Heal flips the injector into a no-fault mode without disturbing
// site streams, so a harness can run a fault window, heal, drive the
// system back to convergence, and assert the healed state matches a
// run that never saw a fault. Report returns per-site draw and fire
// counts for the harness's "every site fired" assertion and the
// CHAOS_report.json artifact.
package chaos

import (
	"errors"
	"sort"
	"sync"
	"sync/atomic"
)

// ErrInjected is wrapped by every error the chaos layer fabricates, so
// tests can tell an injected fault from a real one.
var ErrInjected = errors.New("chaos: injected fault")

// Injector hands out deterministic fault streams by site name.
type Injector struct {
	seed   uint64
	healed atomic.Bool

	mu    sync.Mutex
	sites map[string]*Site
}

// New builds an injector. Equal seeds reproduce equal per-site
// decision streams.
func New(seed uint64) *Injector {
	return &Injector{seed: seed, sites: make(map[string]*Site)}
}

// Seed returns the injector's seed.
func (in *Injector) Seed() uint64 { return in.seed }

// Site returns the named injection point, creating it on first use.
// The site's stream seed is a splitmix64-style finalizer over the
// injector seed and the site name, so distinct sites get disjoint
// streams.
func (in *Injector) Site(name string) *Site {
	in.mu.Lock()
	defer in.mu.Unlock()
	s := in.sites[name]
	if s == nil {
		s = &Site{in: in, name: name, state: siteSeed(in.seed, name)}
		in.sites[name] = s
	}
	return s
}

// Heal disables every fault at every site, present and future. Site
// streams are left untouched; Hit simply stops consuming them.
func (in *Injector) Heal() { in.healed.Store(true) }

// Healed reports whether Heal has been called.
func (in *Injector) Healed() bool { return in.healed.Load() }

// SiteReport is one site's row in Report.
type SiteReport struct {
	Site  string `json:"site"`
	Draws int64  `json:"draws"`
	Fired int64  `json:"fired"`
}

// Report returns per-site decision and fire counts, sorted by site
// name.
func (in *Injector) Report() []SiteReport {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]SiteReport, 0, len(in.sites))
	for _, s := range in.sites {
		s.mu.Lock()
		out = append(out, SiteReport{Site: s.name, Draws: s.draws, Fired: s.fired})
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Site < out[j].Site })
	return out
}

// Site is one named injection point with its own splitmix64 stream.
type Site struct {
	in   *Injector
	name string

	mu    sync.Mutex
	state uint64
	draws int64
	fired int64
}

// Name returns the site's name.
func (s *Site) Name() string { return s.name }

// next advances the site's splitmix64 stream. Called with s.mu held.
func (s *Site) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Hit draws the site's next decision and reports whether a fault with
// probability p fires. A healed injector never fires and does not
// consume the stream.
func (s *Site) Hit(p float64) bool {
	if p <= 0 || s.in.healed.Load() {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.draws++
	hit := float64(s.next()>>11)/(1<<53) < p
	if hit {
		s.fired++
	}
	return hit
}

// Intn draws a fault magnitude in [0, n) from the site's stream —
// the injected latency, the truncation point, the corrupted byte.
func (s *Site) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return int(s.next() % uint64(n))
}

// siteSeed mixes the injector seed with the site name, mirroring the
// pack-private rng derivation in internal/scenario.
func siteSeed(seed uint64, name string) uint64 {
	z := seed ^ 0x9e3779b97f4a7c15
	for i := 0; i < len(name); i++ {
		z = (z ^ uint64(name[i])) * 0xbf58476d1ce4e5b9
	}
	z = (z ^ (z >> 30)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
