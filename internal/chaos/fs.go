package chaos

import (
	"fmt"
	"io"
	"os"
)

// File is the handle surface the WAL and checkpoint writer need from
// an open file.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	io.Closer
	// Sync flushes the file to stable storage.
	Sync() error
	// Name returns the path the file was opened with.
	Name() string
}

// FS is the filesystem surface under the durability layer. OS is the
// real implementation; NewFaultFS wraps any FS with injected write,
// sync, and rename failures. Read-side operations are never faulted:
// the chaos model is a disk that misbehaves on the write path, not one
// that lies about committed data (mid-file corruption has its own
// loud-failure tests).
type FS interface {
	MkdirAll(dir string, perm os.FileMode) error
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	CreateTemp(dir, pattern string) (File, error)
	ReadFile(name string) ([]byte, error)
	WriteFile(name string, data []byte, perm os.FileMode) error
	ReadDir(dir string) ([]os.DirEntry, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	Truncate(name string, size int64) error
	// SyncDir fsyncs a directory, making renames and creates durable.
	SyncDir(dir string) error
}

// OS is the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) MkdirAll(dir string, perm os.FileMode) error { return os.MkdirAll(dir, perm) }

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (osFS) CreateTemp(dir, pattern string) (File, error) { return os.CreateTemp(dir, pattern) }

func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (osFS) WriteFile(name string, data []byte, perm os.FileMode) error {
	return os.WriteFile(name, data, perm)
}

func (osFS) ReadDir(dir string) ([]os.DirEntry, error) { return os.ReadDir(dir) }

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// FSFaults sets the per-operation probability of each filesystem
// fault.
type FSFaults struct {
	// ShortWrite persists only a prefix of one Write's bytes, then
	// errors — the classic torn write. The WAL's append poisoning and
	// reopen-time tail truncation are what make this survivable.
	ShortWrite float64
	// SyncFail makes an fsync (file or directory) report failure.
	SyncFail float64
	// RenameFail fails a rename, leaving the temp file behind — a torn
	// atomic checkpoint publish.
	RenameFail float64
}

// NewFaultFS wraps base (nil = OS) with faults drawn from inj under
// the given site prefix (sites prefix+"/fs.short-write", "/fs.sync",
// "/fs.rename").
func NewFaultFS(inj *Injector, prefix string, faults FSFaults, base FS) FS {
	if base == nil {
		base = OS
	}
	return &faultFS{
		base:       base,
		shortWrite: inj.Site(prefix + "/fs.short-write"),
		syncFail:   inj.Site(prefix + "/fs.sync"),
		renameFail: inj.Site(prefix + "/fs.rename"),
		faults:     faults,
	}
}

type faultFS struct {
	base                             FS
	shortWrite, syncFail, renameFail *Site
	faults                           FSFaults
}

func (f *faultFS) MkdirAll(dir string, perm os.FileMode) error { return f.base.MkdirAll(dir, perm) }

func (f *faultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	h, err := f.base.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: h, fs: f}, nil
}

func (f *faultFS) CreateTemp(dir, pattern string) (File, error) {
	h, err := f.base.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: h, fs: f}, nil
}

func (f *faultFS) ReadFile(name string) ([]byte, error) { return f.base.ReadFile(name) }

func (f *faultFS) WriteFile(name string, data []byte, perm os.FileMode) error {
	// WriteFile only rewrites a torn segment header on reopen — part of
	// recovery, which stays unfaulted like the other read-side repairs.
	return f.base.WriteFile(name, data, perm)
}

func (f *faultFS) ReadDir(dir string) ([]os.DirEntry, error) { return f.base.ReadDir(dir) }

func (f *faultFS) Rename(oldpath, newpath string) error {
	if f.renameFail.Hit(f.faults.RenameFail) {
		return fmt.Errorf("%w: %s: rename %s torn", ErrInjected, f.renameFail.Name(), oldpath)
	}
	return f.base.Rename(oldpath, newpath)
}

func (f *faultFS) Remove(name string) error { return f.base.Remove(name) }

func (f *faultFS) Truncate(name string, size int64) error { return f.base.Truncate(name, size) }

func (f *faultFS) SyncDir(dir string) error {
	if f.syncFail.Hit(f.faults.SyncFail) {
		return fmt.Errorf("%w: %s: fsync %s failed", ErrInjected, f.syncFail.Name(), dir)
	}
	return f.base.SyncDir(dir)
}

// faultFile injects write and sync faults on one open handle.
type faultFile struct {
	File
	fs *faultFS
}

func (h *faultFile) Write(p []byte) (int, error) {
	if len(p) > 1 && h.fs.shortWrite.Hit(h.fs.faults.ShortWrite) {
		// Persist a stream-chosen strict prefix, then fail: the bytes
		// that made it are on disk, exactly like a torn write.
		n := h.fs.shortWrite.Intn(len(p)-1) + 1
		wrote, err := h.File.Write(p[:n])
		if err != nil {
			return wrote, err
		}
		return wrote, fmt.Errorf("%w: %s: short write (%d of %d bytes)", ErrInjected, h.fs.shortWrite.Name(), wrote, len(p))
	}
	return h.File.Write(p)
}

func (h *faultFile) Sync() error {
	if h.fs.syncFail.Hit(h.fs.faults.SyncFail) {
		return fmt.Errorf("%w: %s: fsync %s failed", ErrInjected, h.fs.syncFail.Name(), h.Name())
	}
	return h.File.Sync()
}
