package chaos

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestSiteStreamsAreDeterministicAndDisjoint(t *testing.T) {
	draw := func(seed uint64, site string, n int) []bool {
		in := New(seed)
		s := in.Site(site)
		out := make([]bool, n)
		for i := range out {
			out[i] = s.Hit(0.3)
		}
		return out
	}
	a := draw(42, "c0/net.reset", 200)
	b := draw(42, "c0/net.reset", 200)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same (seed, site) diverged at decision %d", i)
		}
	}
	c := draw(42, "c1/net.reset", 200)
	d := draw(43, "c0/net.reset", 200)
	same := func(x []bool) bool {
		for i := range a {
			if a[i] != x[i] {
				return false
			}
		}
		return true
	}
	if same(c) {
		t.Fatal("different sites share a stream")
	}
	if same(d) {
		t.Fatal("different seeds share a stream")
	}
}

func TestHitRateAndReport(t *testing.T) {
	in := New(7)
	s := in.Site("rate")
	fired := 0
	for i := 0; i < 10000; i++ {
		if s.Hit(0.1) {
			fired++
		}
	}
	if fired < 800 || fired > 1200 {
		t.Fatalf("p=0.1 over 10000 draws fired %d times", fired)
	}
	rep := in.Report()
	if len(rep) != 1 || rep[0].Site != "rate" || rep[0].Draws != 10000 || rep[0].Fired != int64(fired) {
		t.Fatalf("report mismatch: %+v (fired=%d)", rep, fired)
	}
}

func TestHealStopsFaults(t *testing.T) {
	in := New(7)
	s := in.Site("x")
	in.Heal()
	for i := 0; i < 1000; i++ {
		if s.Hit(1.0) {
			t.Fatal("healed injector fired")
		}
	}
}

// transportFor builds a Transport with exactly one fault at p=1.
func transportFor(t *testing.T, in *Injector, f TransportFaults) (*Transport, *httptest.Server, *int) {
	t.Helper()
	hits := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
		io.Copy(io.Discard, r.Body)
		io.WriteString(w, "payload-payload-payload")
	}))
	t.Cleanup(srv.Close)
	return NewTransport(in, "t", f, nil), srv, &hits
}

func TestTransportReset(t *testing.T) {
	tr, srv, hits := transportFor(t, New(1), TransportFaults{Reset: 1})
	cl := &http.Client{Transport: tr}
	_, err := cl.Post(srv.URL, "text/plain", strings.NewReader("body"))
	if err == nil || !strings.Contains(err.Error(), "connection reset") {
		t.Fatalf("want injected reset, got %v", err)
	}
	if *hits != 0 {
		t.Fatalf("server saw %d requests through a reset", *hits)
	}
}

func TestTransportLostResponse(t *testing.T) {
	tr, srv, hits := transportFor(t, New(1), TransportFaults{LostResponse: 1})
	cl := &http.Client{Transport: tr}
	_, err := cl.Get(srv.URL)
	if err == nil || !strings.Contains(err.Error(), "response lost") {
		t.Fatalf("want injected loss, got %v", err)
	}
	if *hits != 1 {
		t.Fatalf("server saw %d requests; a lost response is applied server-side", *hits)
	}
}

func TestTransport503Burst(t *testing.T) {
	tr, srv, hits := transportFor(t, New(1), TransportFaults{Err503: 1, BurstLen: 2})
	cl := &http.Client{Transport: tr}
	for i := 0; i < 3; i++ {
		resp, err := cl.Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("request %d: got %d, want synthetic 503", i, resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatal("synthetic 503 missing Retry-After")
		}
	}
	if *hits != 0 {
		t.Fatalf("server saw %d requests during a 503 burst", *hits)
	}
}

func TestTransportTruncateAndCorrupt(t *testing.T) {
	tr, srv, _ := transportFor(t, New(3), TransportFaults{Truncate: 1})
	cl := &http.Client{Transport: tr}
	resp, err := cl.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if len(raw) >= len("payload-payload-payload") {
		t.Fatalf("truncated body still %d bytes", len(raw))
	}

	tr2, srv2, _ := transportFor(t, New(3), TransportFaults{Corrupt: 1})
	cl2 := &http.Client{Transport: tr2}
	resp2, err := cl2.Get(srv2.URL)
	if err != nil {
		t.Fatal(err)
	}
	raw2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if string(raw2) == "payload-payload-payload" {
		t.Fatal("corrupted body unchanged")
	}
	if len(raw2) != len("payload-payload-payload") {
		t.Fatalf("corrupt changed length to %d", len(raw2))
	}
}

func TestTransportHealedPassesThrough(t *testing.T) {
	in := New(9)
	tr, srv, hits := transportFor(t, in, TransportFaults{Reset: 1, Err503: 1, Truncate: 1, Corrupt: 1, LostResponse: 1})
	in.Heal()
	cl := &http.Client{Transport: tr}
	resp, err := cl.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(raw) != "payload-payload-payload" || *hits != 1 {
		t.Fatalf("healed transport mangled the exchange: %d %q hits=%d", resp.StatusCode, raw, *hits)
	}
}

func TestFaultFSShortWritePersistsPrefix(t *testing.T) {
	dir := t.TempDir()
	fs := NewFaultFS(New(5), "d", FSFaults{ShortWrite: 1}, nil)
	f, err := fs.OpenFile(filepath.Join(dir, "x"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("0123456789abcdef")
	n, err := f.Write(payload)
	f.Close()
	if err == nil || !errors.Is(err, ErrInjected) {
		t.Fatalf("want injected short-write error, got %v", err)
	}
	if n <= 0 || n >= len(payload) {
		t.Fatalf("short write persisted %d of %d bytes", n, len(payload))
	}
	got, err := os.ReadFile(filepath.Join(dir, "x"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(payload[:n]) {
		t.Fatalf("on-disk prefix %q does not match reported %d bytes", got, n)
	}
}

func TestFaultFSSyncAndRename(t *testing.T) {
	dir := t.TempDir()
	fs := NewFaultFS(New(5), "d", FSFaults{SyncFail: 1, RenameFail: 1}, nil)
	f, err := fs.OpenFile(filepath.Join(dir, "y"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("data")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("want injected sync failure, got %v", err)
	}
	f.Close()
	if err := fs.Rename(filepath.Join(dir, "y"), filepath.Join(dir, "z")); !errors.Is(err, ErrInjected) {
		t.Fatalf("want injected rename failure, got %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "y")); err != nil {
		t.Fatal("torn rename lost the source file:", err)
	}
	if err := fs.SyncDir(dir); !errors.Is(err, ErrInjected) {
		t.Fatalf("want injected dir-sync failure, got %v", err)
	}
}

func TestFaultFSHealedIsTransparent(t *testing.T) {
	dir := t.TempDir()
	in := New(5)
	fs := NewFaultFS(in, "d", FSFaults{ShortWrite: 1, SyncFail: 1, RenameFail: 1}, nil)
	in.Heal()
	f, err := fs.CreateTemp(dir, "t*")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("data")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	name := f.Name()
	f.Close()
	if err := fs.Rename(name, filepath.Join(dir, "final")); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile(filepath.Join(dir, "final"))
	if err != nil || string(got) != "data" {
		t.Fatalf("healed FS mangled the file: %q %v", got, err)
	}
}

func TestTransportLatency(t *testing.T) {
	tr, srv, _ := transportFor(t, New(11), TransportFaults{Latency: 1, MaxLatency: 30 * time.Millisecond})
	cl := &http.Client{Transport: tr}
	start := time.Now()
	resp, err := cl.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if time.Since(start) < time.Millisecond {
		t.Fatal("latency fault added no delay")
	}
}
