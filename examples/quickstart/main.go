// Quickstart: build a small reproduction of the IMC'18 cross-border
// tracking study and print its headline results — how confined EU
// citizens' tracking flows really are, and how the choice of geolocation
// database flips the conclusion.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"crossborder"
	"crossborder/internal/geodata"
)

func main() {
	// Scale 0.08 simulates ~30 users and ~300K third-party requests in a
	// couple of seconds; crank it to 1.0 for the paper's full study. The
	// context cancels the build; WithProgress watches the pipeline work.
	study, err := crossborder.New(context.Background(),
		crossborder.WithSeed(1),
		crossborder.WithScale(0.08),
		crossborder.WithProgress(func(ev crossborder.PhaseEvent) {
			if ev.Done == ev.Total {
				fmt.Fprintf(os.Stderr, "phase %-10s done (%d items)\n", ev.Phase, ev.Total)
			}
		}))
	if err != nil {
		log.Fatal(err)
	}

	// Table 1: what the browser extension collected.
	fmt.Print(study.Table1().Render())
	fmt.Println()

	// The headline: Fig 7's geolocation flip. Under a commercial
	// database most EU tracking flows appear to leak to North America;
	// under active geolocation they stay inside GDPR jurisdiction.
	fig7 := study.Fig7()
	fmt.Print(fig7.Render())
	fmt.Printf(`
Takeaway: MaxMind says %.0f%% of EU28 tracking flows terminate in EU28,
RIPE IPmap says %.0f%% — the measurement method alone flips the story.
`, fig7.MaxMindEU28(), fig7.IPMapEU28())

	// National borders are much leakier than the EU28 border (Fig 8).
	fmt.Println()
	fig8 := study.Fig8()
	for _, country := range []geodata.Country{"GB", "ES", "GR", "CY"} {
		if v, ok := fig8.NationalConfinement(country); ok {
			fmt.Printf("national confinement %-14s %5.1f%%\n", geodata.Name(country)+":", v)
		}
	}
}
