// ISP monitor: the paper's §9 vision of continuous GDPR-compliance
// monitoring, built on the §7 methodology. The example compiles the
// tracker IP list once from the extension study, then scans synthesized
// daily ISP snapshots around the GDPR implementation date (May 25, 2018)
// and reports the EU28 confinement trend per ISP — the Table 8 pipeline
// as a monitoring loop.
//
// Run with:
//
//	go run ./examples/isp-monitor
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	"crossborder"
	"crossborder/internal/core"
	"crossborder/internal/geodata"
	"crossborder/internal/netflow"
)

func main() {
	scale := flag.Float64("scale", 0.06, "study scale")
	weeks := flag.Int("weeks", 8, "weekly snapshots around the GDPR date")
	flag.Parse()

	study, err := crossborder.New(context.Background(),
		crossborder.WithSeed(1),
		crossborder.WithScale(*scale),
		crossborder.WithVisitsPerUser(60))
	if err != nil {
		log.Fatal(err)
	}
	s := study.Scenario()
	fqdns := s.FQDNWeights()
	synth := &netflow.Synthesizer{Resolver: s.DNS}

	gdprDay := time.Date(2018, 5, 25, 0, 0, 0, 0, time.UTC)
	start := gdprDay.AddDate(0, 0, -7*(*weeks)/2)

	fmt.Printf("%-12s", "week of")
	for _, isp := range netflow.DefaultISPs() {
		fmt.Printf("  %12s", isp.Name)
	}
	fmt.Println("   (EU28 confinement %)")

	for w := 0; w < *weeks; w++ {
		day := start.AddDate(0, 0, 7*w)
		marker := " "
		if day.Before(gdprDay) && !day.AddDate(0, 0, 7).Before(gdprDay) {
			marker = "*" // GDPR implementation falls in this week
		}
		fmt.Printf("%-11s%s", day.Format("2006-01-02"), marker)
		for i, isp := range netflow.DefaultISPs() {
			rng := rand.New(rand.NewSource(int64(w*10 + i)))
			snap := synth.Synthesize(rng, isp, day, fqdns)
			a := core.NewAnalysis()
			for ip, n := range snap.PerIP {
				if !s.Inventory.IsTrackingIP(ip, day) {
					continue
				}
				if loc, ok := s.IPMap.Locate(ip); ok {
					a.Add(isp.Country, loc.Country, n)
				}
			}
			_, inEU, _, _ := a.RegionConfinement(func(geodata.Country) bool { return true })
			fmt.Printf("  %11.1f%%", inEU)
		}
		fmt.Println()
	}
	fmt.Println("\n(*) the GDPR implementation date (2018-05-25) falls in this week.")
	fmt.Println("The paper's finding: confinement was already high before the date and")
	fmt.Println("did not change dramatically across it (Table 8).")
}
