// Live collector: run the crowdsourced collection backend end to end in
// one process — the flow the paper's measurement infrastructure ran for
// four and a half months, compressed into a few seconds.
//
// The example starts a collectd-style HTTP server over a small synthetic
// world, simulates the user population's browsing, uploads the captured
// event stream in sequence-numbered batches (retransmitting one batch to
// show the at-least-once dedup), and then queries the live API: the
// incremental /v1/stats aggregates and a Table 1 artifact computed from
// an immutable epoch snapshot.
//
// Run with:
//
//	go run ./examples/live-collector
package main

import (
	"fmt"
	"log"
	"net/http/httptest"
	"os"

	"crossborder/internal/ingest"
	"crossborder/internal/scenario"
)

func main() {
	// The world everything runs against: graph, DNS zones, filter lists,
	// geolocation — but no browsing study; events arrive by upload.
	const (
		seed  = 1
		scale = 0.04
	)
	world := scenario.BuildWorld(scenario.Params{Seed: seed, Scale: scale})

	// The collector commits an epoch every 2000 accepted events; each
	// epoch classifies the batch, extends the fixpoint, and publishes an
	// immutable snapshot.
	c := ingest.NewCollector(world, ingest.Config{EpochEvents: 2000})
	defer c.Close()
	srv := httptest.NewServer(ingest.NewServer(c))
	defer srv.Close()
	fmt.Fprintf(os.Stderr, "collector serving on %s\n", srv.URL)

	// Simulate the extension users and upload their event streams.
	events := ingest.RecordSimulation(world, 30, 0)
	cl := &ingest.Client{Base: srv.URL, Binary: true}
	stats, err := cl.Replay(events, 512, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "uploaded %d events in %d batches (%.0f events/sec)\n",
		stats.Events, stats.Batches, stats.EventsPerSec())

	// At-least-once: re-send a batch; the server skips every event.
	for uid, evs := range events {
		n := min(len(evs), 64)
		res, err := cl.Upload(ingest.Batch{User: uid, Seq: 0, Events: evs[:n]})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "retransmit of user %d: %d accepted, %d duplicates skipped\n",
			uid, res.Accepted, res.Duplicate)
		break
	}

	// Commit the final partial epoch and query the live API.
	if _, _, err := cl.Flush(); err != nil {
		log.Fatal(err)
	}
	live, err := cl.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "epoch %d: %d rows, %d users, EU28 confinement %.1f%% (IPmap)\n\n",
		live.Epoch, live.Rows, live.Stats.Users, live.Flows["ipmap"].EU28InEur)

	table1, epoch, err := cl.Artifact("table1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("artifact served from epoch %d:\n\n%s", epoch, table1)
}
