// Live collector: run the crowdsourced collection backend end to end in
// one process — the flow the paper's measurement infrastructure ran for
// four and a half months, compressed into a few seconds.
//
// The example starts a collectd-style HTTP server over a small synthetic
// world, simulates the user population's browsing, uploads the captured
// event stream in sequence-numbered batches (retransmitting one batch to
// show the at-least-once dedup), and then queries the live API: the
// incremental /v1/stats aggregates and a Table 1 artifact computed from
// an immutable epoch snapshot.
//
// It then replays the same stream into a *durable* collector (WAL +
// checkpoints under a data dir), abandons it mid-stream without any
// shutdown — the in-process stand-in for kill -9 — and recovers a
// fresh collector over the same directory: the journal replays through
// the normal dedup path and the re-sent tail heals the rest, ending
// with the same artifact bytes. Against a real daemon the cycle is the
// same: `kill -9 $(pidof collectd)`, restart with the same -data, poll
// /readyz, re-send, compare.
//
// Run with:
//
//	go run ./examples/live-collector
package main

import (
	"fmt"
	"log"
	"net/http/httptest"
	"os"

	"crossborder/internal/ingest"
	"crossborder/internal/scenario"
)

func main() {
	// The world everything runs against: graph, DNS zones, filter lists,
	// geolocation — but no browsing study; events arrive by upload.
	const (
		seed  = 1
		scale = 0.04
	)
	world := scenario.BuildWorld(scenario.Params{Seed: seed, Scale: scale})

	// The collector commits an epoch every 2000 accepted events; each
	// epoch classifies the batch, extends the fixpoint, and publishes an
	// immutable snapshot.
	c := ingest.NewCollector(world, ingest.Config{EpochEvents: 2000})
	defer c.Close()
	srv := httptest.NewServer(ingest.NewServer(c))
	defer srv.Close()
	fmt.Fprintf(os.Stderr, "collector serving on %s\n", srv.URL)

	// Simulate the extension users and upload their event streams.
	events := ingest.RecordSimulation(world, 30, 0)
	cl := &ingest.Client{Base: srv.URL, Binary: true}
	stats, err := cl.Replay(events, 512, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "uploaded %d events in %d batches (%.0f events/sec)\n",
		stats.Events, stats.Batches, stats.EventsPerSec())

	// At-least-once: re-send a batch; the server skips every event.
	for uid, evs := range events {
		n := min(len(evs), 64)
		res, err := cl.Upload(ingest.Batch{User: uid, Seq: 0, Events: evs[:n]})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "retransmit of user %d: %d accepted, %d duplicates skipped\n",
			uid, res.Accepted, res.Duplicate)
		break
	}

	// Commit the final partial epoch and query the live API.
	if _, _, err := cl.Flush(); err != nil {
		log.Fatal(err)
	}
	live, err := cl.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "epoch %d: %d rows, %d users, EU28 confinement %.1f%% (IPmap)\n\n",
		live.Epoch, live.Rows, live.Stats.Users, live.Flows["ipmap"].EU28InEur)

	table1, epoch, err := cl.Artifact("table1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("artifact served from epoch %d:\n\n%s", epoch, table1)

	// Durability: the same stream through a crash. The first durable
	// collector journals every accepted batch to dir/wal, checkpoints
	// half-way, takes a few more batches, and is then abandoned with no
	// Close and no flush — everything it held lives only in the WAL.
	dir, err := os.MkdirTemp("", "live-collector-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	d1 := ingest.NewCollector(world, ingest.Config{
		EpochEvents: 2000, DataDir: dir, WALSync: "interval",
	})
	if _, err := d1.Recover(); err != nil { // empty dir: instant
		log.Fatal(err)
	}
	half := make(map[int32][]ingest.Event, len(events))
	for uid, evs := range events {
		half[uid] = evs[:len(evs)/2]
	}
	ds := httptest.NewServer(ingest.NewServer(d1))
	dcl := &ingest.Client{Base: ds.URL, Binary: true, Retry: &ingest.RetryPolicy{}}
	if _, err := dcl.Replay(half, 512, 1); err != nil {
		log.Fatal(err)
	}
	if _, _, err := dcl.Flush(); err != nil { // epoch commit + checkpoint
		log.Fatal(err)
	}
	if _, err := dcl.Replay(events, 512, 1); err != nil { // tail: WAL only
		log.Fatal(err)
	}
	ds.Close() // abandon: no drain, no final checkpoint — "kill -9"

	// A fresh process over the same directory: load the checkpoint,
	// replay the journal, re-send the stream (at-least-once heals any
	// unsynced tail), and the artifact bytes match the in-memory run.
	d2 := ingest.NewCollector(world, ingest.Config{
		EpochEvents: 2000, DataDir: dir, WALSync: "interval",
	})
	defer d2.Close()
	rstats, err := d2.Recover()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "\nrecovered in %v: checkpoint epoch %d, %d WAL records -> %d rows\n",
		rstats.Duration.Round(1e6), rstats.CheckpointEpoch, rstats.Records, rstats.Rows)
	ds2 := httptest.NewServer(ingest.NewServer(d2))
	defer ds2.Close()
	dcl.Base = ds2.URL
	if _, err := dcl.Replay(events, 512, 1); err != nil {
		log.Fatal(err)
	}
	if _, _, err := dcl.Flush(); err != nil {
		log.Fatal(err)
	}
	recovered, _, err := dcl.Artifact("table1")
	if err != nil {
		log.Fatal(err)
	}
	if recovered != table1 {
		log.Fatal("recovered artifact differs from the uninterrupted run")
	}
	fmt.Fprintln(os.Stderr, "recovered artifact is byte-identical to the uninterrupted run")
}
