// Localization planner: the §5 what-if engine as a tool for a tracking
// operator (or a regulator drafting guidance). It evaluates how much of
// the observed EU28 tracking traffic could be kept inside the user's
// country or inside Europe under each mechanism — DNS redirection at
// FQDN/TLD level, PoP mirroring over the clouds trackers already use,
// and full migration onto the nine major clouds — and prints a
// per-country plan.
//
// Run with:
//
//	go run ./examples/localize
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"crossborder"
	"crossborder/internal/geodata"
	"crossborder/internal/locality"
)

func main() {
	scale := flag.Float64("scale", 0.08, "study scale")
	flag.Parse()

	study, err := crossborder.New(context.Background(),
		crossborder.WithSeed(1), crossborder.WithScale(*scale))
	if err != nil {
		log.Fatal(err)
	}

	// The Table 5 ladder: each mechanism's aggregate potential.
	t5 := study.Table5()
	fmt.Print(t5.Render())
	fmt.Println()

	// Per-country guidance: where does each mechanism actually help?
	t6 := study.Table6()
	fmt.Print(t6.Render())
	fmt.Println()

	fmt.Println("Recommendations:")
	for _, row := range t6.Rows {
		name := geodata.Name(row.Country)
		switch {
		case row.MigrationOverTLD < 1 && !geodata.AnyCloudPoP(row.Country):
			fmt.Printf("  %-10s no public-cloud PoP exists; national confinement needs\n", name+":")
			fmt.Printf("             new local datacenter capacity (the paper's Cyprus case).\n")
		case row.PoPOverTLD >= 1:
			fmt.Printf("  %-10s mirroring onto already-leased clouds adds %.1f points on\n", name+":", row.PoPOverTLD)
			fmt.Printf("             top of TLD-level DNS redirection.\n")
		case row.MigrationOverTLD >= 5:
			fmt.Printf("  %-10s DNS redirection alone is not enough; migrating onto a\n", name+":")
			fmt.Printf("             cloud with a local PoP adds %.1f points.\n", row.MigrationOverTLD)
		default:
			fmt.Printf("  %-10s TLD-level DNS redirection captures nearly all of the\n", name+":")
			fmt.Printf("             achievable confinement.\n")
		}
	}

	d := t5.Row(locality.Default)
	tl := t5.Row(locality.RedirectTLD)
	fmt.Printf("\nHeadline: GDPR-friendly DNS redirection alone lifts national confinement\n"+
		"from %.1f%% to %.1f%% at near-zero cost (the paper's §5.1 conclusion).\n",
		d.InCountry, tl.InCountry)
}
