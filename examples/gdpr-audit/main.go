// GDPR audit: the view a national Data Protection Authority would want.
// For one EU28 member state, the example reports where its citizens'
// tracking flows terminate, which tracking organizations carry personal
// data out of GDPR jurisdiction, and how the sensitive data categories
// (health, sexual orientation, ...) fare — the §2.1 "investigation &
// enforcement" use case the paper motivates.
//
// Run with:
//
//	go run ./examples/gdpr-audit -country ES
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"sort"

	"crossborder"
	"crossborder/internal/classify"
	"crossborder/internal/geodata"
	"crossborder/internal/webgraph"
)

func main() {
	country := flag.String("country", "ES", "EU28 member state to audit (ISO code)")
	scale := flag.Float64("scale", 0.08, "study scale")
	flag.Parse()

	home := geodata.Country(*country)
	if !geodata.IsEU28(home) {
		fmt.Printf("%s is not an EU28 member state\n", home)
		return
	}

	study, err := crossborder.New(context.Background(),
		crossborder.WithSeed(1), crossborder.WithScale(*scale))
	if err != nil {
		log.Fatal(err)
	}
	s := study.Scenario()

	type orgStat struct {
		flows, outsideEU int64
	}
	byOrg := map[string]*orgStat{}
	var total, inCountry, inEU, outsideEU, sensitive, sensitiveOut int64

	s.Dataset.EachRow(func(_ int, row classify.Row) {
		if !row.Class.IsTracking() || s.Dataset.Country(row) != home {
			return
		}
		loc, ok := s.IPMap.Locate(row.IP)
		if !ok {
			return
		}
		total++
		if loc.Country == home {
			inCountry++
		}
		euDest := geodata.IsEU28(loc.Country)
		if euDest {
			inEU++
		} else {
			outsideEU++
		}

		org := "unknown"
		if svc, ok := s.Graph.ServiceByFQDN(s.Dataset.FQDN(row)); ok {
			org = svc.Org
		}
		st := byOrg[org]
		if st == nil {
			st = &orgStat{}
			byOrg[org] = st
		}
		st.flows++
		if !euDest {
			st.outsideEU++
		}

		if cat, ok := s.Identification.ByPublisher[s.Dataset.Publisher(row)]; ok && webgraph.IsSensitive(cat) {
			sensitive++
			if !euDest {
				sensitiveOut++
			}
		}
	})

	if total == 0 {
		fmt.Printf("no tracking flows observed for users in %s at this scale\n", home)
		return
	}

	pct := func(n int64) float64 { return 100 * float64(n) / float64(total) }
	fmt.Printf("GDPR audit for %s (%d tracking flows from resident users)\n\n", geodata.Name(home), total)
	fmt.Printf("  terminate in %-20s %6.1f%%  (national jurisdiction)\n", geodata.Name(home)+":", pct(inCountry))
	fmt.Printf("  terminate in EU28:                %6.1f%%  (GDPR jurisdiction)\n", pct(inEU))
	fmt.Printf("  leave GDPR jurisdiction:          %6.1f%%\n\n", pct(outsideEU))

	if sensitive > 0 {
		fmt.Printf("  sensitive-category flows: %d (%.2f%% of tracking), of which %.1f%% leave EU28\n\n",
			sensitive, pct(sensitive), 100*float64(sensitiveOut)/float64(sensitive))
	}

	// The organizations a DPA would subpoena first: most extra-EU volume.
	type kv struct {
		org string
		st  *orgStat
	}
	ranked := make([]kv, 0, len(byOrg))
	for org, st := range byOrg {
		if st.outsideEU > 0 {
			ranked = append(ranked, kv{org, st})
		}
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].st.outsideEU != ranked[j].st.outsideEU {
			return ranked[i].st.outsideEU > ranked[j].st.outsideEU
		}
		return ranked[i].org < ranked[j].org
	})
	fmt.Println("  top organizations moving data outside EU28:")
	for i, e := range ranked {
		if i >= 8 {
			break
		}
		fmt.Printf("    %-14s %7d flows outside EU28 (%.0f%% of its %d)\n",
			e.org, e.st.outsideEU,
			100*float64(e.st.outsideEU)/float64(e.st.flows), e.st.flows)
	}
}
