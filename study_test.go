package crossborder_test

import (
	"strings"
	"sync"
	"testing"

	"crossborder"
)

var (
	studyOnce sync.Once
	studyVal  *crossborder.Study
)

func tinyStudy(t *testing.T) *crossborder.Study {
	t.Helper()
	studyOnce.Do(func() {
		studyVal = crossborder.NewStudy(crossborder.Options{
			Seed: 1, Scale: 0.04, VisitsPerUser: 25,
		})
	})
	return studyVal
}

func TestStudyRenderAll(t *testing.T) {
	st := tinyStudy(t)
	artifacts := st.RenderAll()
	if len(artifacts) != 20 {
		t.Fatalf("artifacts = %d, want 20 (Tables 1-9 + Figs 2-12)", len(artifacts))
	}
	for i, a := range artifacts {
		if strings.TrimSpace(a) == "" {
			t.Errorf("artifact %d is empty", i)
		}
	}
	// A few anchors must appear.
	joined := strings.Join(artifacts, "\n")
	for _, want := range []string{
		"Table 1", "Table 2", "Fig 7", "Table 5", "Fig 9",
		"Table 8", "Fig 12", "Table 9",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing artifact %q", want)
		}
	}
}

func TestStudyHeadlineShapes(t *testing.T) {
	st := tinyStudy(t)
	fig7 := st.Fig7()
	if fig7.IPMapEU28() < 70 {
		t.Errorf("IPmap EU28 = %.1f, want the confined headline", fig7.IPMapEU28())
	}
	if fig7.MaxMindEU28() >= fig7.IPMapEU28() {
		t.Error("MaxMind must under-report EU28 confinement")
	}
}

func TestStudyScenarioAccess(t *testing.T) {
	st := tinyStudy(t)
	s := st.Scenario()
	if s == nil || s.Dataset == nil || s.Inventory == nil {
		t.Fatal("scenario accessor broken")
	}
	if len(s.FQDNWeights()) == 0 {
		t.Error("no FQDN weights")
	}
}

func TestStudyDeterminism(t *testing.T) {
	a := crossborder.NewStudy(crossborder.Options{Seed: 9, Scale: 0.02, VisitsPerUser: 8})
	b := crossborder.NewStudy(crossborder.Options{Seed: 9, Scale: 0.02, VisitsPerUser: 8})
	if a.Table1().Stats != b.Table1().Stats {
		t.Error("same options must reproduce the same study")
	}
}

func TestRenderTable9(t *testing.T) {
	out := crossborder.RenderTable9()
	if !strings.Contains(out, "This work") || !strings.Contains(out, "RIPE IPmap") {
		t.Error("Table 9 transcription incomplete")
	}
}
