// Benchmarks: one per table and figure of the paper, plus substrate
// micro-benchmarks and ablation benches isolating each methodology
// stage. Each experiment bench reports the headline quantity it
// regenerates via b.ReportMetric, so `go test -bench` output doubles as
// a compact reproduction summary.
package crossborder

import (
	"bytes"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	"crossborder/internal/blocklist"
	"crossborder/internal/classify"
	"crossborder/internal/cluster"
	"crossborder/internal/core"
	"crossborder/internal/experiments"
	"crossborder/internal/geodata"
	"crossborder/internal/ingest"
	"crossborder/internal/netflow"
	"crossborder/internal/netsim"
	"crossborder/internal/scenario"
	"crossborder/internal/scenario/pack"
	"crossborder/internal/webgraph"
)

// benchSuite is built once: benchmarks measure experiment aggregation,
// not world construction (which has its own bench below).
var (
	benchOnce sync.Once
	benchVal  *experiments.Suite
)

func benchSuiteGet(b *testing.B) *experiments.Suite {
	b.Helper()
	benchOnce.Do(func() {
		benchVal = experiments.NewSuite(scenario.Build(scenario.Params{
			Seed: 1, Scale: 0.1, VisitsPerUser: 60,
		}))
		// The three geolocation joins run concurrently in setup so each
		// benchmark measures its aggregation, not the first join.
		benchVal.Precompute()
	})
	return benchVal
}

func BenchmarkScenarioBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		scenario.Build(scenario.Params{Seed: int64(i + 1), Scale: 0.02, VisitsPerUser: 10})
	}
}

// BenchmarkScenarioBuildSequential is the one-worker baseline the
// parallel pipeline is measured against; by the stream-splitting
// contract it produces the identical Dataset.
func BenchmarkScenarioBuildSequential(b *testing.B) {
	for i := 0; i < b.N; i++ {
		scenario.Build(scenario.Params{Seed: int64(i + 1), Scale: 0.02, VisitsPerUser: 10, Workers: 1})
	}
}

func BenchmarkTable1Dataset(b *testing.B) {
	su := benchSuiteGet(b)
	var r experiments.Table1Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r = su.Table1()
	}
	b.ReportMetric(float64(r.Stats.ThirdPartyReqs), "3p-requests")
}

func BenchmarkTable2Classification(b *testing.B) {
	su := benchSuiteGet(b)
	var r experiments.Table2Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r = su.Table2()
	}
	b.ReportMetric(r.SemiToABPRatio(), "semi/abp-ratio")
	b.ReportMetric(100*r.Acc.Recall(), "recall-pct")
}

func BenchmarkFig2RequestsCDF(b *testing.B) {
	su := benchSuiteGet(b)
	var r experiments.Fig2Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r = su.Fig2()
	}
	b.ReportMetric(100*r.TrackingDominatesShare, "tracking-dominates-pct")
}

func BenchmarkFig3TopTLDs(b *testing.B) {
	su := benchSuiteGet(b)
	var r experiments.Fig3Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r = su.Fig3()
	}
	b.ReportMetric(float64(len(r.Top)), "tlds")
}

func BenchmarkFig4DomainsPerIP(b *testing.B) {
	su := benchSuiteGet(b)
	var r experiments.Fig4Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r = su.Fig4()
	}
	b.ReportMetric(100*r.Sharing.SingleTLDRequestShare(), "dedicated-req-pct")
	b.ReportMetric(r.ExtraSharePct(), "pdns-extra-pct")
}

func BenchmarkFig5SharedIPs(b *testing.B) {
	su := benchSuiteGet(b)
	var r experiments.Fig5Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r = su.Fig5()
	}
	b.ReportMetric(float64(len(r.SharedIPs)), "shared-ips")
}

func BenchmarkTable3GeoAgreement(b *testing.B) {
	su := benchSuiteGet(b)
	var r experiments.Table3Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r = su.Table3()
	}
	b.ReportMetric(r.IPAPIvMaxMind.Country, "commercial-agree-pct")
	b.ReportMetric(r.MaxMindvIPMap.Country, "maxmind-ipmap-agree-pct")
}

func BenchmarkTable4MaxMindErrors(b *testing.B) {
	su := benchSuiteGet(b)
	var r experiments.Table4Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r = su.Table4()
	}
	b.ReportMetric(r.Rows[0].WrongCountryPct(), "google-wrong-country-pct")
}

func BenchmarkFig6ContinentSankey(b *testing.B) {
	su := benchSuiteGet(b)
	var r experiments.Fig6Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r = su.Fig6()
	}
	b.ReportMetric(r.Confinement[geodata.EU28], "eu28-confinement-pct")
}

func BenchmarkFig7GeoComparison(b *testing.B) {
	su := benchSuiteGet(b)
	var r experiments.Fig7Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r = su.Fig7()
	}
	b.ReportMetric(r.IPMapEU28(), "ipmap-eu28-pct")
	b.ReportMetric(r.MaxMindEU28(), "maxmind-eu28-pct")
}

func BenchmarkFig8CountrySankey(b *testing.B) {
	su := benchSuiteGet(b)
	var r experiments.Fig8Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r = su.Fig8()
	}
	if v, ok := r.NationalConfinement("GB"); ok {
		b.ReportMetric(v, "uk-national-pct")
	}
}

func BenchmarkTable5Localization(b *testing.B) {
	su := benchSuiteGet(b)
	var r experiments.Table5Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r = su.Table5()
	}
	b.ReportMetric(r.Rows[2].InCountry-r.Default.InCountry, "tld-improvement-pts")
}

func BenchmarkTable6CloudMigration(b *testing.B) {
	su := benchSuiteGet(b)
	var r experiments.Table6Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r = su.Table6()
	}
	if gr, ok := r.Row("GR"); ok {
		b.ReportMetric(gr.MigrationOverTLD, "greece-migration-pts")
	}
}

func BenchmarkFig9SensitiveShare(b *testing.B) {
	su := benchSuiteGet(b)
	var r experiments.Fig9Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r = su.Fig9()
	}
	b.ReportMetric(r.Report.PctOfAll(), "sensitive-pct")
}

func BenchmarkFig10SensitiveDest(b *testing.B) {
	su := benchSuiteGet(b)
	var r experiments.Fig10Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r = su.Fig10()
	}
	b.ReportMetric(r.OverallEU28Share(), "sensitive-eu28-pct")
}

func BenchmarkFig11SensitiveCountry(b *testing.B) {
	su := benchSuiteGet(b)
	var r experiments.Fig11Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r = su.Fig11()
	}
	b.ReportMetric(float64(len(r.Leaks)), "countries")
}

func BenchmarkTable7ISPProfiles(b *testing.B) {
	su := benchSuiteGet(b)
	for i := 0; i < b.N; i++ {
		_ = su.Table7()
	}
}

func BenchmarkTable8ISPConfinement(b *testing.B) {
	su := benchSuiteGet(b)
	var r experiments.Table8Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r = su.Table8()
	}
	if rep, ok := r.Report("DE-Broadband", experiments.SnapshotDates()[1]); ok {
		b.ReportMetric(rep.EU28, "de-broadband-eu28-pct")
	}
}

func BenchmarkFig12ISPTopCountries(b *testing.B) {
	su := benchSuiteGet(b)
	t8 := su.Table8()
	var r experiments.Fig12Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r = su.Fig12(t8)
	}
	b.ReportMetric(r.NationalShare("DE-Broadband", "DE"), "de-national-pct")
}

func BenchmarkTable9RelatedWork(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.RenderTable9()
	}
}

// --- Ablation benches ---

// BenchmarkAblationClassifierABPOnly measures how much tracking the
// filter lists alone catch versus the full multi-stage classifier.
func BenchmarkAblationClassifierABPOnly(b *testing.B) {
	su := benchSuiteGet(b)
	ds := su.S.Dataset
	var abpOnly, full int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		abpOnly, full = 0, 0
		for ci := 0; ci < ds.Store.NumChunks(); ci++ {
			for _, cls := range ds.Store.Classes(ci) {
				if cls == classify.ClassABP {
					abpOnly++
				}
				if cls.IsTracking() {
					full++
				}
			}
		}
	}
	b.ReportMetric(100*float64(abpOnly)/float64(full), "abp-share-of-full-pct")
}

// BenchmarkAblationGeolocation quantifies how the geolocation service
// choice moves the headline EU28 confinement.
func BenchmarkAblationGeolocation(b *testing.B) {
	su := benchSuiteGet(b)
	var truthEU, mmEU, ipmapEU float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, truthEU, _, _ = su.TruthAnalysis().RegionConfinement(core.EU28Origin)
		_, mmEU, _, _ = su.MaxMindAnalysis().RegionConfinement(core.EU28Origin)
		_, ipmapEU, _, _ = su.IPMapAnalysis().RegionConfinement(core.EU28Origin)
	}
	b.ReportMetric(truthEU, "truth-eu28-pct")
	b.ReportMetric(ipmapEU, "ipmap-eu28-pct")
	b.ReportMetric(mmEU, "maxmind-eu28-pct")
}

// BenchmarkAblationPDNS measures the inventory with and without passive
// DNS completion.
func BenchmarkAblationPDNS(b *testing.B) {
	su := benchSuiteGet(b)
	inv := su.S.Inventory
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = inv.NumObserved()
	}
	b.ReportMetric(float64(inv.NumObserved()), "observed-ips")
	b.ReportMetric(float64(inv.NumExtra()), "pdns-only-ips")
}

// BenchmarkAblationDNSPolicy compares confinement under the org's real
// policy mix with an all-

// HQ counterfactual resolved over the same zones.
func BenchmarkAblationDNSPolicy(b *testing.B) {
	su := benchSuiteGet(b)
	s := su.S
	rng := rand.New(rand.NewSource(7))
	day := time.Date(2017, 10, 15, 0, 0, 0, 0, time.UTC)
	zones := s.DNS.Zones()
	if len(zones) > 400 {
		zones = zones[:400]
	}
	b.ResetTimer()
	var inDE int
	for i := 0; i < b.N; i++ {
		inDE = 0
		for _, z := range zones {
			ip, err := s.DNS.Resolve(rng, z, "DE", day)
			if err != nil {
				continue
			}
			if loc, ok := s.Truth.Locate(ip); ok && loc.Country == "DE" {
				inDE++
			}
		}
	}
	b.ReportMetric(100*float64(inDE)/float64(len(zones)), "de-local-zone-pct")
}

// --- Substrate micro-benchmarks ---

func BenchmarkV9EncodeDecode(b *testing.B) {
	enc := &netflow.Encoder{SourceID: 1, Boot: time.Now().Add(-time.Hour)}
	dec := netflow.NewDecoder()
	now := time.Now()
	if _, err := dec.Decode(enc.EncodeTemplate(now)); err != nil {
		b.Fatal(err)
	}
	recs := make([]netflow.Record, 256)
	for i := range recs {
		recs[i] = netflow.Record{
			First: now, Last: now, InputIf: 1, Proto: netflow.ProtoTCP,
			SrcIP: 0x60000000 + netsim.IP(i), DstIP: 0x10000000, DstPort: 443,
			Packets: 10, Bytes: 1000,
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pkt, n := enc.EncodeData(now, recs)
		got, err := dec.Decode(pkt)
		if err != nil || len(got) != n {
			b.Fatal("round trip failed")
		}
	}
	b.SetBytes(int64(len(recs) * 34))
}

func BenchmarkBlocklistMatch(b *testing.B) {
	g := webgraph.Build(rand.New(rand.NewSource(1)), webgraph.Config{}.Scale(0.1))
	el, ep := blocklist.Generate(rand.New(rand.NewSource(2)), g, blocklist.Coverage{})
	l1, _ := blocklist.Parse("easylist", el)
	l2, _ := blocklist.Parse("easyprivacy", ep)
	reqs := []blocklist.Request{
		{URL: "https://pagead2.googlesyndication.com/adserv/slot?sz=1", PageDomain: "site1.com"},
		{URL: "https://static.cdn001.com/lib/main.js", PageDomain: "site1.com"},
		{URL: "https://sync.dmp0001.com/cookiesync?uid=5", PageDomain: "site2.com"},
		{URL: "https://www.google-analytics.com/collect?tid=1", PageDomain: "site3.com"},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := reqs[i%len(reqs)]
		blocklist.MatchAny(q, l1, l2)
	}
}

func BenchmarkIPMapLocate(b *testing.B) {
	su := benchSuiteGet(b)
	ips := su.S.Inventory.IPs()
	if len(ips) == 0 {
		b.Skip("no IPs")
	}
	// Warm the cache first so the bench measures steady-state lookups.
	for _, ip := range ips {
		su.S.IPMap.Locate(ip)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		su.S.IPMap.Locate(ips[i%len(ips)])
	}
}

// benchIngestCapture builds the shared ingest-bench fixture: the world
// and the pre-encoded binary upload batches of a scale-0.02 capture.
var benchIngestOnce sync.Once
var benchIngestWorld *scenario.Scenario
var benchIngestBatches [][]byte
var benchIngestTotal int

func benchIngestCapture(b *testing.B) (*scenario.Scenario, [][]byte, int) {
	b.Helper()
	benchIngestOnce.Do(func() {
		benchIngestWorld = scenario.BuildWorld(scenario.Params{Seed: 1, Scale: 0.02, VisitsPerUser: 10})
		events := ingest.RecordSimulation(benchIngestWorld, 10, 0)
		users := make([]int32, 0, len(events))
		for uid, evs := range events {
			users = append(users, uid)
			benchIngestTotal += len(evs)
		}
		sort.Slice(users, func(i, j int) bool { return users[i] < users[j] })
		for _, uid := range users {
			stream := events[uid]
			for off := 0; off < len(stream); off += 512 {
				hi := off + 512
				if hi > len(stream) {
					hi = len(stream)
				}
				benchIngestBatches = append(benchIngestBatches, ingest.EncodeBinary(ingest.Batch{
					User: uid, Seq: uint64(off), Events: stream[off:hi],
				}))
			}
		}
	})
	return benchIngestWorld, benchIngestBatches, benchIngestTotal
}

// benchIngestRun replays the captured batches through one collector per
// op. With a DataDir in cfg the run is durable — WAL journaling on
// every upload; checkpoint additionally writes the epoch checkpoint on
// the final flush (the full write path a durable collectd pays on
// /v1/flush).
func benchIngestRun(b *testing.B, cfg ingest.Config, checkpoint bool) {
	world, batches, total := benchIngestCapture(b)
	root := b.TempDir()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run := cfg
		if cfg.DataDir != "" {
			run.DataDir = filepath.Join(root, fmt.Sprintf("op%d", i))
		}
		c := ingest.NewCollector(world, run)
		if run.DataDir != "" {
			if _, err := c.Recover(); err != nil {
				b.Fatal(err)
			}
		}
		for _, raw := range batches {
			bt, err := ingest.DecodeBinary(raw)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := c.Ingest(bt); err != nil {
				b.Fatal(err)
			}
		}
		if checkpoint {
			if _, err := c.FlushCheckpoint(); err != nil {
				b.Fatal(err)
			}
		} else {
			c.Flush()
		}
		c.Close()
	}
	b.StopTimer()
	b.ReportMetric(float64(total)*float64(b.N)/b.Elapsed().Seconds(), "events/sec")
	b.ReportMetric(float64(total), "events/op")
}

// BenchmarkIngestThroughput drives the live collection pipeline end to
// end in-process: binary batch decode -> sequence dedup -> sharded
// stage-1 classification -> user-ordered merge into the columnar store
// -> incremental fixpoint + aggregate deltas -> snapshot publish. One
// op replays the whole captured event stream; events/sec is the
// headline serving metric.
func BenchmarkIngestThroughput(b *testing.B) {
	benchIngestRun(b, ingest.Config{EpochEvents: 1 << 14}, false)
}

// BenchmarkIngestThroughputWAL is the durable variant: the same replay
// with write-ahead journaling in the loop. "interval" is the default
// deployment policy; "always" pays one fsync per upload batch and is
// required to stay within 2x of the memory baseline; "checkpoint" adds
// the epoch-checkpoint write (store re-encode + atomic rename + fsync)
// a durable /v1/flush performs on top of interval journaling.
func BenchmarkIngestThroughputWAL(b *testing.B) {
	for _, bc := range []struct {
		name string
		pol  string
		ckpt bool
	}{
		{"interval", "interval", false},
		{"always", "always", false},
		{"checkpoint", "interval", true},
	} {
		b.Run(bc.name, func(b *testing.B) {
			benchIngestRun(b, ingest.Config{EpochEvents: 1 << 14, DataDir: "x", WALSync: bc.pol}, bc.ckpt)
		})
	}
}

// BenchmarkIngestThroughputHTTP replays the captured upload batches
// through the collector's HTTP handler itself (request construction,
// routing, decode, ingest, JSON ack — no sockets, so the numbers
// isolate handler cost from kernel networking). "bare" is the handler
// with no limits; "guarded" runs the full overload-protection path a
// production collectd enables — admission semaphore, MaxBytesReader
// body cap, per-request read/write deadlines. The guarded variant is
// the no-fault tax of the protection layer and is pinned within 5% of
// bare in BENCH_baseline.json: protection must be free until it fires.
func BenchmarkIngestThroughputHTTP(b *testing.B) {
	world, batches, total := benchIngestCapture(b)
	for _, bc := range []struct {
		name string
		opts []ingest.ServerOption
	}{
		{"bare", nil},
		{"guarded", []ingest.ServerOption{ingest.WithLimits(ingest.Limits{
			MaxInFlight:    64,
			MaxUploadBytes: 64 << 20,
			UploadTimeout:  30 * time.Second,
		})}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c := ingest.NewCollector(world, ingest.Config{EpochEvents: 1 << 14})
				h := ingest.NewServer(c, bc.opts...)
				for _, raw := range batches {
					req := httptest.NewRequest(http.MethodPost, "/v1/upload", bytes.NewReader(raw))
					req.Header.Set("Content-Type", ingest.ContentTypeBinary)
					rec := httptest.NewRecorder()
					h.ServeHTTP(rec, req)
					if rec.Code != http.StatusOK {
						b.Fatalf("upload: %d %s", rec.Code, rec.Body.String())
					}
				}
				c.Flush()
				c.Close()
			}
			b.StopTimer()
			b.ReportMetric(float64(total)*float64(b.N)/b.Elapsed().Seconds(), "events/sec")
			b.ReportMetric(float64(total), "events/op")
		})
	}
}

// BenchmarkClusterIngest replays the captured stream into an n-shard
// durable partitioned cluster — in-process collectors, users assigned
// by the same consistent-hash ring collectd deployments use, WAL
// journaling with byte-cadenced auto-checkpoints — and reports
// aggregate events/sec. The in-epoch pipeline is incremental (O(new
// events)), so the dataset-sized cost a cluster actually shards is the
// checkpoint: at a fixed per-node durability budget (CheckpointBytes
// of uncovered WAL) the single collector keeps re-encoding its whole
// growing store, while each of eight shards re-encodes a ~1/8-size
// store ~1/8 as often. The shards run sequentially here, so the
// speedup is pure work reduction — one-core honest; multicore
// deployments multiply it. shards=8 aggregate throughput is pinned at
// >=3x shards=1 in BENCH_baseline.json.
func BenchmarkClusterIngest(b *testing.B) {
	world, batches, total := benchIngestCapture(b)
	root := b.TempDir()
	for _, n := range []int{1, 8} {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			nodes := make([]string, n)
			for i := range nodes {
				nodes[i] = fmt.Sprintf("c%d", i)
			}
			ring, err := cluster.NewRing(nodes, 0)
			if err != nil {
				b.Fatal(err)
			}
			idx := make(map[string]int, n)
			for i, node := range nodes {
				idx[node] = i
			}
			// Route each pre-encoded upload batch to its ring owner
			// outside the timer; the op measures ingest, not routing.
			parts := make([][][]byte, n)
			for _, raw := range batches {
				bt, err := ingest.DecodeBinary(raw)
				if err != nil {
					b.Fatal(err)
				}
				s := idx[ring.Owner(bt.User)]
				parts[s] = append(parts[s], raw)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for s := 0; s < n; s++ {
					dir := filepath.Join(root, fmt.Sprintf("n%d-s%d", n, s))
					c := ingest.NewCollector(world, ingest.Config{
						EpochEvents:     1 << 12,
						DataDir:         dir,
						WALSync:         "none",
						CheckpointBytes: 32 << 10,
					})
					if _, err := c.Recover(); err != nil {
						b.Fatal(err)
					}
					for _, raw := range parts[s] {
						bt, err := ingest.DecodeBinary(raw)
						if err != nil {
							b.Fatal(err)
						}
						if _, err := c.Ingest(bt); err != nil {
							b.Fatal(err)
						}
					}
					c.Flush()
					c.Close()
					// Each op starts from an empty data dir: the cost
					// measured is one full durable replay, not recovery
					// over the previous op's artifacts (and the temp
					// volume stays flat across iterations).
					b.StopTimer()
					if err := os.RemoveAll(dir); err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(total)*float64(b.N)/b.Elapsed().Seconds(), "events/sec")
			b.ReportMetric(float64(total), "events/op")
		})
	}
}

func BenchmarkCoreAnalyze(b *testing.B) {
	su := benchSuiteGet(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Analyze(su.S.Dataset, su.S.Truth, nil)
	}
	b.ReportMetric(float64(su.S.Dataset.Len()), "rows")
}

// BenchmarkSweepCell measures one cell of a scenario-pack sweep grid:
// a full packed build (here the routing pack, whose world hook
// re-registers every tracking zone) plus the cross-study Summarize
// pass — the unit of work cmd/sweep schedules per (seed, pack).
func BenchmarkSweepCell(b *testing.B) {
	params, err := pack.Params(scenario.Params{Seed: 1, Scale: 0.02, VisitsPerUser: 10}, "routing")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var sum scenario.Summary
	for i := 0; i < b.N; i++ {
		sum = scenario.Summarize(scenario.Build(params))
	}
	b.ReportMetric(float64(sum.Flows), "flows")
}
