// Command collectd is the live collection daemon: the crowdsourced
// measurement backend the paper's browser extensions uploaded to,
// serving the reproduction's artifacts from a continuously growing
// dataset instead of a one-shot batch build.
//
// On startup it builds the synthetic world (graph, DNS zones, filter
// lists, geolocation services — everything except the browsing study)
// for the given -seed/-scale, then accepts event uploads and answers
// queries:
//
//	POST /v1/upload           batched events (NDJSON or binary framing)
//	POST /v1/flush            force an epoch commit (+ checkpoint with -data)
//	GET  /v1/experiments      registry ids
//	GET  /v1/experiments/{id} artifact over the latest epoch snapshot
//	GET  /v1/stats            incrementally maintained aggregates
//	GET  /healthz, /readyz    liveness, readiness (recovery progress)
//	GET  /metrics             Prometheus counters
//
// Uploads carry per-user sequence numbers; re-sent batches deduplicate,
// so clients retry freely (at-least-once). Accepted events commit as an
// epoch every -epoch events: the batch is classified through -workers
// shards, merged into the columnar store, the semi-stage fixpoint
// extends incrementally, and the flow-map/stats aggregates advance by
// the epoch's delta. Queries read immutable epoch snapshots and never
// block ingestion.
//
// With -data the daemon is durable: accepted batches journal to a
// write-ahead log under the data dir (fsync policy via -wal-sync),
// /v1/flush and graceful shutdown write epoch checkpoints, and a
// restart — even after kill -9 — recovers the exact pre-crash state by
// loading the newest checkpoint and replaying the WAL tail. The HTTP
// listener is up during recovery: /healthz says alive, /readyz reports
// replay progress, uploads get 503 + Retry-After until ready.
//
// The daemon protects itself under overload: at most -max-inflight
// uploads are admitted concurrently (excess answers 429 + Retry-After
// immediately — retrying clients back off instead of piling onto the
// ingest lock), request bodies are capped at -max-upload-bytes, each
// upload gets a -upload-timeout connection deadline so a trickling
// client cannot pin a slot, and the listener itself carries
// -read-header-timeout / -idle-timeout slowloris guards.
//
// SIGTERM/SIGINT shut down gracefully: new uploads 503, in-flight
// requests drain, a final epoch + checkpoint is written, exit 0.
// -checkpoint-bytes additionally cuts checkpoints mid-run whenever the
// WAL grows past the threshold, bounding recovery time.
//
// With -node and -registry the daemon joins a cluster: it heartbeats
// its name, advertised address, and epoch high-water mark into the
// registries (normally the mergerd fan-in tier), owns the ring
// partition of users that hash to its name, and exports its committed
// state at GET /v1/snapshot for the merge tier to pull.
//
// Replay a simulated study against it with:
//
//	collectd -scale 0.1 -addr :8477 -data /var/lib/collectd
//	crawlsim -scale 0.1 -replay -target http://localhost:8477
//
// The replayed artifacts are byte-identical to `reproduce -scale 0.1`.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"crossborder/internal/cluster"
	"crossborder/internal/ingest"
	"crossborder/internal/scenario"
)

func main() {
	addr := flag.String("addr", ":8477", "HTTP listen address")
	seed := flag.Int64("seed", 1, "world seed; must match the uploading clients")
	scale := flag.Float64("scale", 0.25, "population scale; must match the uploading clients")
	epoch := flag.Int("epoch", 1<<15, "events per epoch commit")
	workers := flag.Int("workers", 0, "classification/fixpoint workers (0 = GOMAXPROCS)")
	compress := flag.Bool("compress", false, "keep sealed chunks of the live store compressed (cold epochs stop paying full-width memory; served artifacts are identical)")
	data := flag.String("data", "", "durability directory (WAL + checkpoints); empty = memory-only")
	walSync := flag.String("wal-sync", "interval", "WAL fsync policy: always | interval | none")
	walSyncEvery := flag.Duration("wal-sync-interval", 100*time.Millisecond, "background fsync cadence under -wal-sync=interval")
	walSegment := flag.Int64("wal-segment", 64<<20, "WAL segment size before rotation, bytes")
	ckptBytes := flag.Int64("checkpoint-bytes", 0, "cut a checkpoint automatically once the uncovered WAL exceeds this many bytes (0 = only on flush/shutdown; needs -data)")
	maxInflight := flag.Int("max-inflight", 64, "max concurrently admitted uploads; excess gets 429 + Retry-After (0 = unlimited)")
	maxUpload := flag.Int64("max-upload-bytes", 0, "max upload request body, bytes (0 = 64 MiB)")
	uploadTimeout := flag.Duration("upload-timeout", 30*time.Second, "per-upload read+apply deadline (0 = none)")
	readHeaderTimeout := flag.Duration("read-header-timeout", 10*time.Second, "http.Server ReadHeaderTimeout (slowloris guard)")
	readTimeout := flag.Duration("read-timeout", 0, "http.Server ReadTimeout (0 = none; uploads are already bounded by -upload-timeout)")
	writeTimeout := flag.Duration("write-timeout", 0, "http.Server WriteTimeout (0 = none)")
	idleTimeout := flag.Duration("idle-timeout", 2*time.Minute, "http.Server IdleTimeout for keep-alive connections")
	node := flag.String("node", "", "stable shard name in a cluster (enables heartbeating with -registry)")
	advertise := flag.String("advertise", "", "base URL clients and the merge tier reach this shard at (default http://<addr>)")
	registry := flag.String("registry", "", "comma-separated registry base URLs to heartbeat into (typically the mergerd address)")
	heartbeat := flag.Duration("heartbeat", time.Second, "heartbeat cadence with -registry")
	flag.Parse()

	fmt.Fprintf(os.Stderr, "collectd: building world (seed=%d scale=%.2f)...\n", *seed, *scale)
	start := time.Now()
	world, err := scenario.BuildWorldContext(context.Background(), scenario.Params{
		Seed: *seed, Scale: *scale, Workers: *workers,
		Progress: func(ev scenario.PhaseEvent) {
			if ev.Done == ev.Total {
				fmt.Fprintf(os.Stderr, "collectd:   %-10s done (%v)\n", ev.Phase, ev.Elapsed.Round(time.Millisecond))
			}
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "collectd:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "collectd: world ready in %v (%d users, %d publishers)\n",
		time.Since(start).Round(time.Millisecond), len(world.Users), len(world.Graph.Publishers))

	c := ingest.NewCollector(world, ingest.Config{
		EpochEvents: *epoch, Workers: *workers, Compress: *compress,
		DataDir: *data, WALSync: *walSync,
		WALSyncInterval: *walSyncEvery, WALSegmentBytes: *walSegment,
		CheckpointBytes: *ckptBytes,
	})
	defer c.Close()
	handler := ingest.NewServer(c, ingest.WithLimits(ingest.Limits{
		MaxInFlight:    *maxInflight,
		MaxUploadBytes: *maxUpload,
		UploadTimeout:  *uploadTimeout,
	}))
	srv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: *readHeaderTimeout,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
	}

	// Listen before recovering: during a long WAL replay the daemon
	// already answers /healthz (alive) and /readyz (progress), and
	// uploads bounce with 503 + Retry-After instead of connection
	// refused — retrying clients wait recovery out.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "collectd:", err)
		os.Exit(1)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "collectd: serving on %s (epoch=%d events, workers=%d)\n", ln.Addr(), *epoch, *workers)

	// Cluster membership: announce this shard to the registries so the
	// merge tier pulls its snapshots and clients can re-resolve its
	// address after a restart. Heartbeats start before recovery — the
	// shard is discoverable (suspect, then alive) while it replays.
	if *node != "" && *registry != "" {
		adv := *advertise
		if adv == "" {
			adv = "http://" + ln.Addr().String()
		}
		var targets []string
		for _, t := range strings.Split(*registry, ",") {
			if t = strings.TrimSpace(t); t != "" {
				targets = append(targets, t)
			}
		}
		hb := &cluster.Heartbeater{
			Node: *node, Addr: adv, Targets: targets, Interval: *heartbeat,
			Source: func() (int, int) {
				snap := c.Snapshot()
				return snap.Epoch(), snap.Rows()
			},
		}
		hb.Start()
		defer hb.Stop()
		fmt.Fprintf(os.Stderr, "collectd: heartbeating as %q (%s) to %v every %v\n", *node, adv, targets, *heartbeat)
	}

	if *data != "" {
		fmt.Fprintf(os.Stderr, "collectd: recovering from %s (wal-sync=%s)...\n", *data, *walSync)
		rstats, err := c.Recover()
		if err != nil {
			fmt.Fprintln(os.Stderr, "collectd:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "collectd: recovered in %v (checkpoint epoch %d, %d WAL segments, %d records, %d rows)\n",
			rstats.Duration.Round(time.Millisecond), rstats.CheckpointEpoch, rstats.Segments, rstats.Records, rstats.Rows)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
	case err := <-serveErr:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "collectd:", err)
			os.Exit(1)
		}
	}

	// Graceful shutdown: refuse new uploads (503 + Retry-After), drain
	// in-flight requests, then commit the final epoch and checkpoint.
	fmt.Fprintln(os.Stderr, "collectd: shutting down (draining uploads)")
	c.BeginDrain()
	shctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	srv.Shutdown(shctx)
	snap, err := c.FlushCheckpoint()
	if err != nil {
		fmt.Fprintln(os.Stderr, "collectd: final checkpoint:", err)
		os.Exit(1)
	}
	if *data != "" {
		fmt.Fprintf(os.Stderr, "collectd: checkpointed epoch %d, %d rows\n", snap.Epoch(), snap.Rows())
	}
	fmt.Fprintf(os.Stderr, "collectd: stopped at epoch %d, %d rows\n", snap.Epoch(), snap.Rows())
}
