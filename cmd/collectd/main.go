// Command collectd is the live collection daemon: the crowdsourced
// measurement backend the paper's browser extensions uploaded to,
// serving the reproduction's artifacts from a continuously growing
// dataset instead of a one-shot batch build.
//
// On startup it builds the synthetic world (graph, DNS zones, filter
// lists, geolocation services — everything except the browsing study)
// for the given -seed/-scale, then accepts event uploads and answers
// queries:
//
//	POST /v1/upload           batched events (NDJSON or binary framing)
//	POST /v1/flush            force an epoch commit
//	GET  /v1/experiments      registry ids
//	GET  /v1/experiments/{id} artifact over the latest epoch snapshot
//	GET  /v1/stats            incrementally maintained aggregates
//	GET  /healthz, /metrics   liveness and Prometheus counters
//
// Uploads carry per-user sequence numbers; re-sent batches deduplicate,
// so clients retry freely (at-least-once). Accepted events commit as an
// epoch every -epoch events: the batch is classified through -workers
// shards, merged into the columnar store, the semi-stage fixpoint
// extends incrementally, and the flow-map/stats aggregates advance by
// the epoch's delta. Queries read immutable epoch snapshots and never
// block ingestion.
//
// Replay a simulated study against it with:
//
//	collectd -scale 0.1 -addr :8477
//	crawlsim -scale 0.1 -replay -target http://localhost:8477
//
// The replayed artifacts are byte-identical to `reproduce -scale 0.1`.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"time"

	"crossborder/internal/ingest"
	"crossborder/internal/scenario"
)

func main() {
	addr := flag.String("addr", ":8477", "HTTP listen address")
	seed := flag.Int64("seed", 1, "world seed; must match the uploading clients")
	scale := flag.Float64("scale", 0.25, "population scale; must match the uploading clients")
	epoch := flag.Int("epoch", 1<<15, "events per epoch commit")
	workers := flag.Int("workers", 0, "classification/fixpoint workers (0 = GOMAXPROCS)")
	compress := flag.Bool("compress", false, "keep sealed chunks of the live store compressed (cold epochs stop paying full-width memory; served artifacts are identical)")
	flag.Parse()

	fmt.Fprintf(os.Stderr, "collectd: building world (seed=%d scale=%.2f)...\n", *seed, *scale)
	start := time.Now()
	world, err := scenario.BuildWorldContext(context.Background(), scenario.Params{
		Seed: *seed, Scale: *scale, Workers: *workers,
		Progress: func(ev scenario.PhaseEvent) {
			if ev.Done == ev.Total {
				fmt.Fprintf(os.Stderr, "collectd:   %-10s done (%v)\n", ev.Phase, ev.Elapsed.Round(time.Millisecond))
			}
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "collectd:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "collectd: world ready in %v (%d users, %d publishers)\n",
		time.Since(start).Round(time.Millisecond), len(world.Users), len(world.Graph.Publishers))

	c := ingest.NewCollector(world, ingest.Config{EpochEvents: *epoch, Workers: *workers, Compress: *compress})
	defer c.Close()
	srv := &http.Server{Addr: *addr, Handler: ingest.NewServer(c)}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	go func() {
		<-ctx.Done()
		fmt.Fprintln(os.Stderr, "collectd: shutting down")
		shctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(shctx)
	}()

	fmt.Fprintf(os.Stderr, "collectd: serving on %s (epoch=%d events, workers=%d)\n", *addr, *epoch, *workers)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "collectd:", err)
		os.Exit(1)
	}
	snap := c.Flush()
	fmt.Fprintf(os.Stderr, "collectd: stopped at epoch %d, %d rows\n", snap.Epoch(), snap.Rows())
}
