// Command reproduce runs the full reproduction of "Tracing Cross Border
// Web Tracking" (IMC 2018) and prints every table and figure of the
// paper's evaluation as plain-text artifacts.
//
// Usage:
//
//	reproduce [-scale 0.25] [-seed 1] [-visits 219] [-only Fig7]
//
// At -scale 1 the run simulates the paper's full 7M-request study and
// takes on the order of a minute; smaller scales keep every shape and
// finish in seconds.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"crossborder"
)

func main() {
	scale := flag.Float64("scale", 0.25, "population scale (1.0 = the paper's 350 users / 7.2M requests)")
	seed := flag.Int64("seed", 1, "world seed; same seed, same study")
	visits := flag.Int("visits", 0, "mean page visits per user (0 = the paper's 219)")
	only := flag.String("only", "", "render a single experiment (e.g. Table5, Fig7); empty = all")
	flag.Parse()

	start := time.Now()
	fmt.Fprintf(os.Stderr, "building scenario (scale=%.2f seed=%d)...\n", *scale, *seed)
	study := crossborder.NewStudy(crossborder.Options{
		Seed: *seed, Scale: *scale, VisitsPerUser: *visits,
	})
	fmt.Fprintf(os.Stderr, "scenario ready in %v; running experiments\n", time.Since(start).Round(time.Millisecond))

	if *only != "" {
		render, ok := renderOne(study, *only)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; use Table1..Table9 or Fig2..Fig12\n", *only)
			os.Exit(2)
		}
		fmt.Println(render)
		return
	}

	for _, artifact := range study.RenderAll() {
		fmt.Println(artifact)
		fmt.Println(strings.Repeat("=", 78))
	}
	fmt.Fprintf(os.Stderr, "done in %v\n", time.Since(start).Round(time.Millisecond))
}

func renderOne(st *crossborder.Study, name string) (string, bool) {
	switch strings.ToLower(name) {
	case "table1":
		return st.Table1().Render(), true
	case "table2":
		return st.Table2().Render(), true
	case "fig2":
		return st.Fig2().Render(), true
	case "fig3":
		return st.Fig3().Render(), true
	case "fig4":
		return st.Fig4().Render(), true
	case "fig5":
		return st.Fig5().Render(), true
	case "table3":
		return st.Table3().Render(), true
	case "table4":
		return st.Table4().Render(), true
	case "fig6":
		return st.Fig6().Render(), true
	case "fig7":
		return st.Fig7().Render(), true
	case "fig8":
		return st.Fig8().Render(), true
	case "table5":
		return st.Table5().Render(), true
	case "table6":
		return st.Table6().Render(), true
	case "fig9":
		return st.Fig9().Render(), true
	case "fig10":
		return st.Fig10().Render(), true
	case "fig11":
		return st.Fig11().Render(), true
	case "table7":
		return st.Table7().Render(), true
	case "table8":
		return st.Table8().Render(), true
	case "fig12":
		return st.Fig12(st.Table8()).Render(), true
	case "table9":
		return crossborder.RenderTable9(), true
	default:
		return "", false
	}
}
