// Command reproduce runs the full reproduction of "Tracing Cross Border
// Web Tracking" (IMC 2018) and prints every table and figure of the
// paper's evaluation, driven entirely by the experiment registry.
//
// Usage:
//
//	reproduce [-scale 0.25] [-seed 1] [-visits 219] [-workers 0]
//	          [-diskstore] [-compress auto|on|off] [-pushdown auto|on|off]
//	          [-pack routing] [-only fig7,table8] [-json|-csv] [-progress]
//	reproduce -list
//	reproduce -list-packs
//
// -list prints the registry (id, paper section, title) without building
// anything. -only takes one or more comma-separated, case-insensitive
// experiment ids; a bad id prints the valid ids. -json and -csv switch
// the output to the machine-readable artifact encodings. -diskstore
// spills the dataset's column chunks to a temp file instead of holding
// them in memory — the backend for scales far beyond 1.0 — and changes
// no output byte. -compress overrides the per-chunk column codec
// (default: on for the disk store, off in memory); like the store
// choice it never changes the output. -pushdown overrides the
// experiments' decode-free projection scans (default: on exactly where
// the store serves encoded blocks); it too never changes a byte of
// output. Ctrl-C cancels the build cleanly mid-phase.
//
// At -scale 1 the run simulates the paper's full 7M-request study and
// takes on the order of a minute; smaller scales keep every shape and
// finish in seconds.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"crossborder"
)

func main() {
	scale := flag.Float64("scale", 0.25, "population scale (1.0 = the paper's 350 users / 7.2M requests)")
	seed := flag.Int64("seed", 1, "world seed; same seed, same study")
	visits := flag.Int("visits", 0, "mean page visits per user (0 = the paper's 219)")
	workers := flag.Int("workers", 0, "simulation worker-pool size (0 = GOMAXPROCS; output is identical at any value)")
	diskStore := flag.Bool("diskstore", false, "spill the dataset's row store to a temp file (identical output; bounds memory at large -scale)")
	compress := flag.String("compress", "auto", "row-store chunk codec: auto (on for -diskstore, off in memory), on, or off; identical output either way")
	pushdown := flag.String("pushdown", "auto", "projection scans over encoded chunks: auto (on for block-backed stores), on, or off; identical output either way")
	only := flag.String("only", "", "comma-separated experiment ids to render (e.g. fig7,table8; case-insensitive); empty = all")
	packName := flag.String("pack", "", "scenario pack to apply (see -list-packs; empty or \"default\" = the unmodified study)")
	listPacks := flag.Bool("list-packs", false, "print the registered scenario packs and exit")
	list := flag.Bool("list", false, "print the experiment registry (id, section, title) and exit")
	asJSON := flag.Bool("json", false, "emit the structured results as one JSON array")
	asCSV := flag.Bool("csv", false, "emit the structured results as flattened CSV rows")
	progress := flag.Bool("progress", false, "report per-phase build progress on stderr")
	flag.Parse()

	if *list {
		for _, e := range crossborder.Experiments() {
			fmt.Printf("%-8s %-6s %s\n", e.ID, e.Section, e.Title)
		}
		return
	}
	if *listPacks {
		for _, p := range crossborder.Packs() {
			fmt.Printf("%-12s %s\n", p.Name, p.Description)
		}
		return
	}
	if *asJSON && *asCSV {
		fmt.Fprintln(os.Stderr, "-json and -csv are mutually exclusive")
		os.Exit(2)
	}

	// Resolve the requested ids through the registry before paying for
	// the build, so a typo fails fast with the valid id list.
	ids := crossborder.ExperimentIDs()
	if *only != "" {
		ids = nil
		seen := make(map[string]bool)
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			exp, ok := crossborder.LookupExperiment(name)
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q; valid ids:\n", name)
				for _, e := range crossborder.Experiments() {
					fmt.Fprintf(os.Stderr, "  %-8s %s\n", e.ID, e.Title)
				}
				os.Exit(2)
			}
			if seen[exp.ID] {
				continue
			}
			seen[exp.ID] = true
			ids = append(ids, exp.ID)
		}
		if len(ids) == 0 {
			fmt.Fprintln(os.Stderr, "-only given but no experiment ids parsed")
			os.Exit(2)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	opts := []crossborder.Option{
		crossborder.WithSeed(*seed),
		crossborder.WithScale(*scale),
		crossborder.WithVisitsPerUser(*visits),
		crossborder.WithWorkers(*workers),
	}
	if *packName != "" {
		opts = append(opts, crossborder.WithPack(*packName))
	}
	if *diskStore {
		opts = append(opts, crossborder.WithRowStore(crossborder.DiskRowStore("")))
	}
	switch *compress {
	case "auto":
	case "on":
		opts = append(opts, crossborder.WithCompression(true))
	case "off":
		opts = append(opts, crossborder.WithCompression(false))
	default:
		fmt.Fprintf(os.Stderr, "-compress must be auto, on or off (got %q)\n", *compress)
		os.Exit(2)
	}
	switch *pushdown {
	case "auto":
	case "on":
		opts = append(opts, crossborder.WithPushdown(true))
	case "off":
		opts = append(opts, crossborder.WithPushdown(false))
	default:
		fmt.Fprintf(os.Stderr, "-pushdown must be auto, on or off (got %q)\n", *pushdown)
		os.Exit(2)
	}
	if *progress {
		opts = append(opts, crossborder.WithProgress(func(ev crossborder.PhaseEvent) {
			fmt.Fprintf(os.Stderr, "\r%-10s %d/%d (%v)   ",
				ev.Phase, ev.Done, ev.Total, ev.Elapsed.Round(time.Millisecond))
			if ev.Done == ev.Total {
				fmt.Fprintln(os.Stderr)
			}
		}))
	}

	start := time.Now()
	fmt.Fprintf(os.Stderr, "building scenario (scale=%.2f seed=%d)...\n", *scale, *seed)
	study, err := crossborder.New(ctx, opts...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "build aborted: %v\n", err)
		os.Exit(1)
	}
	defer study.Close()
	fmt.Fprintf(os.Stderr, "scenario ready in %v; running experiments\n", time.Since(start).Round(time.Millisecond))

	// A full run executes the whole dependency graph in parallel up
	// front (Precompute + concurrent experiments); the per-Suite cache
	// then makes the sequential emit loops below free.
	if *only == "" {
		if _, err := study.RunAll(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "run aborted: %v\n", err)
			os.Exit(1)
		}
	}

	switch {
	case *asJSON:
		err = emitJSON(ctx, study, ids)
	case *asCSV:
		err = emitCSV(ctx, study, ids)
	default:
		err = emitText(ctx, study, ids, *only == "")
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "run aborted: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "done in %v\n", time.Since(start).Round(time.Millisecond))
}

// emitText renders the artifacts as plain text, with the separator
// rule between them when the full evaluation runs.
func emitText(ctx context.Context, study *crossborder.Study, ids []string, separators bool) error {
	for _, id := range ids {
		a, err := study.Artifact(ctx, id)
		if err != nil {
			return err
		}
		fmt.Println(a.Render())
		if separators {
			fmt.Println(strings.Repeat("=", 78))
		}
	}
	return nil
}

// emitJSON prints one JSON array with an object per experiment: id,
// title, section, and the structured result.
func emitJSON(ctx context.Context, study *crossborder.Study, ids []string) error {
	type entry struct {
		ID      string          `json:"id"`
		Title   string          `json:"title"`
		Section string          `json:"section"`
		Result  json.RawMessage `json:"result"`
	}
	out := make([]entry, 0, len(ids))
	for _, id := range ids {
		a, err := study.Artifact(ctx, id)
		if err != nil {
			return err
		}
		raw, err := a.JSON()
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		exp, _ := crossborder.LookupExperiment(id)
		out = append(out, entry{ID: exp.ID, Title: exp.Title, Section: exp.Section, Result: raw})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// emitCSV prints every artifact's flattened rows as one CSV stream with
// an experiment column: "experiment,path,value".
func emitCSV(ctx context.Context, study *crossborder.Study, ids []string) error {
	fmt.Println("experiment,path,value")
	for _, id := range ids {
		a, err := study.Artifact(ctx, id)
		if err != nil {
			return err
		}
		raw, err := a.CSV()
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		lines := strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
		for _, line := range lines[1:] { // drop the per-artifact header
			fmt.Printf("%s,%s\n", id, line)
		}
	}
	return nil
}
