// Command sweep runs a seed × scenario-pack grid of studies on the
// worker pool and renders the cross-study comparison experiments:
// per-pack deltas of the Table 1/2 aggregates, classifier accuracy,
// tracking flow counts and EU28 confinement, and the tracker inventory,
// each against the default (unmodified) build at the same seeds.
//
// Usage:
//
//	sweep [-seeds 1,2,3] [-packs default,routing,adversarial,population]
//	      [-scale 0.05] [-visits 40] [-workers 0] [-check] [-json]
//	sweep -list-packs
//
// The grid is deterministic at any -workers value: each cell builds on
// its own worker-count-invariant pipeline and results assemble in cell
// order. -check additionally asserts every pack's registered invariants
// against the default build at the same seed (requires "default" among
// -packs) and exits non-zero on violation. -json emits the raw summary
// grid instead of the rendered comparison tables.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"crossborder/internal/experiments"
	"crossborder/internal/scenario"
	"crossborder/internal/scenario/pack"
)

func main() {
	seedsFlag := flag.String("seeds", "1,2", "comma-separated world seeds")
	packsFlag := flag.String("packs", strings.Join(pack.Names(), ","), "comma-separated pack names")
	scale := flag.Float64("scale", 0.05, "population scale per cell")
	visits := flag.Int("visits", 40, "mean page visits per user (0 = the paper's 219)")
	workers := flag.Int("workers", 0, "concurrent cells (0 = 4; each cell also parallelizes internally)")
	check := flag.Bool("check", false, "assert every pack's invariants against the default build at the same seed")
	asJSON := flag.Bool("json", false, "emit the raw summary grid as JSON instead of the comparison tables")
	listPacks := flag.Bool("list-packs", false, "print the registered scenario packs and exit")
	flag.Parse()

	if *listPacks {
		for _, p := range pack.All() {
			fmt.Printf("%-12s %s\n", p.Name, p.Description)
		}
		return
	}

	seeds, err := parseSeeds(*seedsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(2)
	}
	var packs []string
	for _, n := range strings.Split(*packsFlag, ",") {
		if n = strings.TrimSpace(n); n != "" {
			packs = append(packs, n)
		}
	}
	if len(seeds) == 0 || len(packs) == 0 {
		fmt.Fprintln(os.Stderr, "sweep: need at least one seed and one pack")
		os.Exit(2)
	}

	base := scenario.Params{Scale: *scale, VisitsPerUser: *visits}
	cells, err := pack.Cells(seeds, packs, base)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(2)
	}

	cellWorkers := *workers
	if cellWorkers <= 0 {
		cellWorkers = 4
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	start := time.Now()
	fmt.Fprintf(os.Stderr, "sweep: %d cells (%d seeds x %d packs) at scale %.2f, %d concurrent\n",
		len(cells), len(seeds), len(packs), *scale, cellWorkers)
	results, err := scenario.Sweep(ctx, cells, cellWorkers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep aborted:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "sweep: grid built in %v\n", time.Since(start).Round(time.Millisecond))

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(1)
		}
	} else {
		grid := &experiments.SweepGrid{Results: results}
		for _, c := range experiments.Comparisons() {
			fmt.Println(c.Run(grid).Render())
			fmt.Println(strings.Repeat("=", 78))
		}
	}

	if *check {
		if code := runChecks(results); code != 0 {
			os.Exit(code)
		}
	}
}

// runChecks asserts every non-default cell's pack invariants against
// the default build at the same seed, reporting each verdict.
func runChecks(results []scenario.CellResult) int {
	base := map[int64]scenario.Summary{}
	for _, r := range results {
		if r.Cell.Label == "default" {
			base[r.Cell.Seed] = r.Summary
		}
	}
	if len(base) == 0 {
		fmt.Fprintln(os.Stderr, "sweep: -check needs the default pack in -packs")
		return 2
	}
	failures := 0
	for _, r := range results {
		p, err := pack.Get(r.Cell.Label)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			return 2
		}
		if p.Check == nil {
			continue
		}
		b, ok := base[r.Cell.Seed]
		if !ok {
			fmt.Fprintf(os.Stderr, "sweep: no default cell for seed %d\n", r.Cell.Seed)
			return 2
		}
		if err := p.Check(b, r.Summary); err != nil {
			fmt.Fprintf(os.Stderr, "FAIL seed %d pack %s: %v\n", r.Cell.Seed, r.Cell.Label, err)
			failures++
		} else {
			fmt.Fprintf(os.Stderr, "ok   seed %d pack %s\n", r.Cell.Seed, r.Cell.Label)
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "sweep: %d invariant failure(s)\n", failures)
		return 1
	}
	return 0
}

func parseSeeds(s string) ([]int64, error) {
	var out []int64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.ParseInt(part, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad seed %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}
