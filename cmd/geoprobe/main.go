// Command geoprobe geolocates the tracker IP inventory with the three
// services the paper compares — a MaxMind-style commercial database, an
// IP-API-style derivative, and the RIPE IPmap-style active geolocator —
// and prints per-IP answers plus the Table 3 pairwise-agreement summary.
// It is the §3.4 methodology in miniature.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"crossborder"
	"crossborder/internal/geo"
)

func main() {
	scale := flag.Float64("scale", 0.05, "scenario scale")
	seed := flag.Int64("seed", 1, "world seed")
	n := flag.Int("n", 15, "IPs to print individually (the agreement summary always uses all)")
	flag.Parse()

	study, err := crossborder.New(context.Background(),
		crossborder.WithSeed(*seed),
		crossborder.WithScale(*scale),
		crossborder.WithVisitsPerUser(40))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	s := study.Scenario()
	ips := s.Inventory.IPs()

	fmt.Printf("%-16s %-14s %-14s %-14s %-14s\n", "IP", "truth", "maxmind", "ip-api", "ripe-ipmap")
	for i, ip := range ips {
		if i >= *n {
			break
		}
		row := fmt.Sprintf("%-16s", ip.String())
		for _, svc := range []geo.Service{s.Truth, s.MaxMind, s.IPAPI, s.IPMap} {
			if loc, ok := svc.Locate(ip); ok {
				row += fmt.Sprintf(" %-14s", string(loc.Country))
			} else {
				row += fmt.Sprintf(" %-14s", "?")
			}
		}
		fmt.Println(row)
	}

	fmt.Println()
	fmt.Print(study.Table3().Render())
	fmt.Println()
	fmt.Print(study.Table4().Render())
}
