// Command flowscan demonstrates the §7 ISP pipeline end to end at record
// granularity: it builds the tracker IP inventory, synthesizes individual
// NetFlow records for one ISP's edge routers, encodes them into NetFlow
// v9 export packets, decodes them on the collector side, scans the
// decoded records against the inventory (with per-binding validity
// windows), and prints the tracking-flow statistics and top destination
// countries.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"crossborder"
	"crossborder/internal/core"
	"crossborder/internal/geodata"
	"crossborder/internal/netflow"
	"crossborder/internal/netsim"
)

func main() {
	scale := flag.Float64("scale", 0.05, "scenario scale")
	seed := flag.Int64("seed", 1, "world seed")
	ispName := flag.String("isp", "DE-Broadband", "ISP profile (DE-Broadband, DE-Mobile, PL, HU)")
	nRecords := flag.Int("records", 200000, "flow records to synthesize")
	sampling := flag.Int("sampling", 100, "NetFlow sampling rate 1:N")
	flag.Parse()

	var isp netflow.ISPProfile
	found := false
	for _, p := range netflow.DefaultISPs() {
		if p.Name == *ispName {
			isp, found = p, true
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "unknown ISP %q\n", *ispName)
		os.Exit(2)
	}

	study, err := crossborder.New(context.Background(),
		crossborder.WithSeed(*seed),
		crossborder.WithScale(*scale),
		crossborder.WithVisitsPerUser(40))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	s := study.Scenario()
	rng := rand.New(rand.NewSource(*seed + 99))
	day := time.Date(2018, 4, 4, 12, 0, 0, 0, time.UTC)

	// Draw the day's per-IP distribution once, then emit individual
	// records against it, mixed with non-tracking background traffic.
	synth := &netflow.Synthesizer{Resolver: s.DNS}
	dist := synth.Synthesize(rng, isp, day, s.FQDNWeights())
	var trackerIPs []struct {
		ip netsim.IP
		w  int64
	}
	var totalW int64
	for ip, n := range dist.PerIP {
		trackerIPs = append(trackerIPs, struct {
			ip netsim.IP
			w  int64
		}{ip, n})
		totalW += n
	}
	if len(trackerIPs) == 0 {
		fmt.Fprintln(os.Stderr, "no tracker destinations synthesized")
		os.Exit(1)
	}

	eyeballs := s.World.EyeballBlock(isp.Country)
	sampler := &netflow.Sampler{N: *sampling}
	enc := &netflow.Encoder{SourceID: 1, Boot: day.Add(-24 * time.Hour)}
	dec := netflow.NewDecoder()
	dec.Boot = enc.Boot

	// Collector side: decode template first, like a real collector.
	if _, err := dec.Decode(enc.EncodeTemplate(day)); err != nil {
		panic(err)
	}

	var decoded []netflow.Record
	batch := make([]netflow.Record, 0, 1024)
	flush := func() {
		for len(batch) > 0 {
			pkt, n := enc.EncodeData(day, batch)
			recs, err := dec.Decode(pkt)
			if err != nil {
				panic(err)
			}
			decoded = append(decoded, recs...)
			batch = batch[n:]
		}
		batch = batch[:0]
	}

	exported := 0
	for i := 0; i < *nRecords; i++ {
		if !sampler.Sample() {
			continue
		}
		exported++
		rec := netflow.Record{
			First: day, Last: day,
			RouterID: 1, InputIf: 10, OutputIf: 20,
			Proto:   netflow.ProtoTCP,
			SrcIP:   eyeballs.Nth(uint32(rng.Intn(int(eyeballs.Size())))),
			SrcPort: uint16(32768 + rng.Intn(28000)),
			DstPort: 443,
			Packets: uint32(1 + rng.Intn(50)),
		}
		if rng.Intn(100) < 17 {
			rec.DstPort = 80 // ~83% encrypted, §7.2
		}
		if rng.Intn(100) < 30 {
			// Tracking flow: destination drawn from the day's profile.
			x := rng.Int63n(totalW)
			for _, t := range trackerIPs {
				x -= t.w
				if x < 0 {
					rec.DstIP = t.ip
					break
				}
			}
		} else {
			// Background web traffic to non-tracker space.
			rec.DstIP = netsim.IP(0xC0000000 + uint32(rng.Intn(1<<20)))
		}
		rec.Bytes = rec.Packets * uint32(200+rng.Intn(1200))
		batch = append(batch, rec)
		if len(batch) == cap(batch) {
			flush()
		}
	}
	flush()

	res := netflow.Scan(decoded, map[uint16]bool{10: true}, s.Inventory.IsTrackingIP)
	fmt.Printf("%s on %s  (sampling 1:%d)\n", isp.Name, day.Format("2006-01-02"), *sampling)
	fmt.Printf("  exported records : %d (of %d flows)\n", exported, *nRecords)
	fmt.Printf("  decoded records  : %d\n", res.Records)
	fmt.Printf("  web records      : %d\n", res.WebRecords)
	fmt.Printf("  tracking flows   : %d (%.1f%% of web)\n", res.Tracking,
		100*float64(res.Tracking)/float64(res.WebRecords))
	fmt.Printf("  encrypted        : %.1f%% of tracking\n",
		100*float64(res.Encrypted)/float64(res.Tracking))

	// Geolocate destinations the paper's way (IPmap) and print Fig 12's
	// view for this ISP.
	a := core.NewAnalysis()
	for ip, n := range res.PerIP {
		if loc, ok := s.IPMap.Locate(ip); ok {
			a.Add(isp.Country, loc.Country, n)
		} else {
			a.AddUnknown(n)
		}
	}
	fmt.Println("  top destination countries:")
	for _, e := range a.TopDestinations(5) {
		fmt.Printf("    %-16s %6.2f%%\n", geodata.Name(geodata.Country(e.To)), e.Percent)
	}
}
