// Command benchguard turns a benchmark run into a CI gate: it reads
// `go test -bench` output on stdin, compares the benchmark's best ns/op
// against the pinned value in BENCH_baseline.json, and exits non-zero
// when the regression exceeds the allowed fraction.
//
// Usage:
//
//	go test -run=NONE -bench='^BenchmarkScenarioBuild$' -benchtime=5x . |
//	    go run ./cmd/benchguard -baseline BENCH_baseline.json -max-regress 0.25
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
)

// baseline mirrors the slice of BENCH_baseline.json benchguard needs:
// the pinned post-PR numbers per benchmark.
type baseline struct {
	PostPR map[string]struct {
		NsPerOp float64 `json:"ns_per_op"`
	} `json:"post_pr"`
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_baseline.json", "baseline JSON with post_pr.<bench>.ns_per_op")
	bench := flag.String("bench", "BenchmarkScenarioBuild", "benchmark name to guard")
	maxRegress := flag.Float64("max-regress", 0.25, "maximum allowed ns/op regression as a fraction of the baseline")
	flag.Parse()

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fatalf("read baseline: %v", err)
	}
	var base baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fatalf("parse baseline %s: %v", *baselinePath, err)
	}
	pinned, ok := base.PostPR[*bench]
	if !ok || pinned.NsPerOp <= 0 {
		fatalf("baseline %s has no post_pr entry for %s", *baselinePath, *bench)
	}

	// Bench lines look like:
	//   BenchmarkScenarioBuild-8   5   67202645 ns/op   ...
	// The GOMAXPROCS suffix is optional. Multiple matches (e.g. -count)
	// keep the best run — the fairest steady-state estimate on noisy
	// shared runners.
	line := regexp.MustCompile(`^` + regexp.QuoteMeta(*bench) + `(?:-\d+)?\s+\d+\s+([\d.]+) ns/op`)
	best := 0.0
	seen := 0
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fmt.Println(sc.Text()) // pass the bench output through for the CI log
		m := line.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[1], 64)
		if err != nil {
			continue
		}
		seen++
		if best == 0 || ns < best {
			best = ns
		}
	}
	if err := sc.Err(); err != nil {
		fatalf("read bench output: %v", err)
	}
	if seen == 0 {
		fatalf("no %s result found on stdin", *bench)
	}

	limit := pinned.NsPerOp * (1 + *maxRegress)
	change := 100 * (best - pinned.NsPerOp) / pinned.NsPerOp
	fmt.Printf("benchguard: %s best %.0f ns/op vs baseline %.0f ns/op (%+.1f%%, limit +%.0f%%)\n",
		*bench, best, pinned.NsPerOp, change, 100**maxRegress)
	if best > limit {
		fatalf("%s regressed beyond the %.0f%% budget", *bench, 100**maxRegress)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchguard: "+format+"\n", args...)
	os.Exit(1)
}
