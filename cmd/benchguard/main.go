// Command benchguard turns a benchmark run into a CI gate: it reads
// `go test -bench` output on stdin, compares each guarded benchmark's
// best ns/op — and, when the run used -benchmem and the baseline pins
// one, its best allocs/op — against the values in BENCH_baseline.json,
// and exits non-zero when a regression exceeds the allowed fraction.
// The allowed fraction is per-bench: a post_pr entry may carry its own
// max_regress / max_allocs_regress, and the -max-regress /
// -max-allocs-regress flags only fill in for benches that don't. With
// -emit it also writes every parsed benchmark result as JSON, the file
// CI uploads as the per-PR benchmark artifact.
//
// -ratio adds machine-independent gates between two benches of the
// same run: `-ratio 'BenchX/guarded<=1.05*BenchX/bare'` fails when
// guarded's best ns/op exceeds 1.05x bare's, whatever the runner's
// absolute speed — the right shape for "feature Y costs <= N% on the
// hot path" claims, where an absolute pin would conflate the claim
// with the machine.
//
// Usage:
//
//	go test -run=NONE -bench='^BenchmarkScenarioBuild$' -benchtime=5x -benchmem . |
//	    go run ./cmd/benchguard -baseline BENCH_baseline.json \
//	        -bench BenchmarkScenarioBuild
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// baseline mirrors the slice of BENCH_baseline.json benchguard needs:
// the pinned post-PR numbers per benchmark, plus optional per-bench
// tolerance overrides. A bench with no override is gated at the CLI
// defaults; an override wins over the flags, so the tolerance lives
// next to the number it guards instead of being scattered across CI
// step invocations.
type baseline struct {
	PostPR map[string]struct {
		NsPerOp          float64  `json:"ns_per_op"`
		AllocsPerOp      float64  `json:"allocs_per_op"`
		MaxRegress       *float64 `json:"max_regress,omitempty"`
		MaxAllocsRegress *float64 `json:"max_allocs_regress,omitempty"`
	} `json:"post_pr"`
}

// result is the best (lowest) observed numbers for one benchmark.
type result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	hasAllocs   bool
}

// benchLine matches `BenchmarkX-8  5  123 ns/op[  456 B/op  7 allocs/op]`;
// the GOMAXPROCS suffix and the -benchmem columns are optional. Extra
// ReportMetric columns may follow and are ignored.
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(?:.*?\s([\d.]+) B/op\s+([\d.]+) allocs/op)?`)

func main() {
	baselinePath := flag.String("baseline", "BENCH_baseline.json", "baseline JSON with post_pr.<bench>.{ns_per_op,allocs_per_op}")
	bench := flag.String("bench", "BenchmarkScenarioBuild", "comma-separated benchmark names to guard")
	maxRegress := flag.Float64("max-regress", 0.25, "default maximum allowed ns/op regression as a fraction of the baseline (a post_pr entry's max_regress overrides it)")
	maxAllocs := flag.Float64("max-allocs-regress", 0.25, "default maximum allowed allocs/op regression as a fraction of the baseline (a post_pr entry's max_allocs_regress overrides it; gated only when the baseline pins allocs and the run used -benchmem)")
	emit := flag.String("emit", "", "write every parsed benchmark result to this JSON file")
	ratio := flag.String("ratio", "", "comma-separated same-run ratio gates, each 'num<=1.05*den': fail when bench num's best ns/op exceeds the factor times bench den's (machine-independent overhead bounds)")
	flag.Parse()

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fatalf("read baseline: %v", err)
	}
	var base baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fatalf("parse baseline %s: %v", *baselinePath, err)
	}

	// Multiple runs of one benchmark (e.g. -count) keep the best — the
	// fairest steady-state estimate on noisy shared runners.
	results := make(map[string]*result)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fmt.Println(sc.Text()) // pass the bench output through for the CI log
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		r := results[m[1]]
		if r == nil {
			r = &result{NsPerOp: ns}
			results[m[1]] = r
		} else if ns < r.NsPerOp {
			r.NsPerOp = ns
		}
		if m[3] != "" {
			bytes, _ := strconv.ParseFloat(m[3], 64)
			allocs, _ := strconv.ParseFloat(m[4], 64)
			if !r.hasAllocs || allocs < r.AllocsPerOp {
				r.AllocsPerOp = allocs
			}
			if !r.hasAllocs || bytes < r.BytesPerOp {
				r.BytesPerOp = bytes
			}
			r.hasAllocs = true
		}
	}
	if err := sc.Err(); err != nil {
		fatalf("read bench output: %v", err)
	}

	if *emit != "" {
		out, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			fatalf("encode results: %v", err)
		}
		if err := os.WriteFile(*emit, append(out, '\n'), 0o644); err != nil {
			fatalf("write %s: %v", *emit, err)
		}
	}

	failed := false
	for _, name := range strings.Split(*bench, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		pinned, ok := base.PostPR[name]
		if !ok || pinned.NsPerOp <= 0 {
			fatalf("baseline %s has no post_pr entry for %s", *baselinePath, name)
		}
		got, ok := results[name]
		if !ok {
			fatalf("no %s result found on stdin", name)
		}
		nsLimit, allocLimit := *maxRegress, *maxAllocs
		if pinned.MaxRegress != nil {
			nsLimit = *pinned.MaxRegress
		}
		if pinned.MaxAllocsRegress != nil {
			allocLimit = *pinned.MaxAllocsRegress
		}
		change := 100 * (got.NsPerOp - pinned.NsPerOp) / pinned.NsPerOp
		fmt.Printf("benchguard: %s best %.0f ns/op vs baseline %.0f ns/op (%+.1f%%, limit +%.0f%%)\n",
			name, got.NsPerOp, pinned.NsPerOp, change, 100*nsLimit)
		if got.NsPerOp > pinned.NsPerOp*(1+nsLimit) {
			fmt.Fprintf(os.Stderr, "benchguard: %s ns/op regressed beyond the %.0f%% budget\n", name, 100*nsLimit)
			failed = true
		}
		if pinned.AllocsPerOp > 0 && got.hasAllocs {
			change := 100 * (got.AllocsPerOp - pinned.AllocsPerOp) / pinned.AllocsPerOp
			fmt.Printf("benchguard: %s best %.0f allocs/op vs baseline %.0f allocs/op (%+.1f%%, limit +%.0f%%)\n",
				name, got.AllocsPerOp, pinned.AllocsPerOp, change, 100*allocLimit)
			if got.AllocsPerOp > pinned.AllocsPerOp*(1+allocLimit) {
				fmt.Fprintf(os.Stderr, "benchguard: %s allocs/op regressed beyond the %.0f%% budget\n", name, 100*allocLimit)
				failed = true
			}
		}
	}
	for _, spec := range strings.Split(*ratio, ",") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		m := ratioSpec.FindStringSubmatch(spec)
		if m == nil {
			fatalf("bad -ratio spec %q (want 'numBench<=1.05*denBench')", spec)
		}
		limit, err := strconv.ParseFloat(m[2], 64)
		if err != nil || limit <= 0 {
			fatalf("bad -ratio factor in %q", spec)
		}
		num, ok := results[m[1]]
		if !ok {
			fatalf("no %s result found on stdin", m[1])
		}
		den, ok := results[m[3]]
		if !ok {
			fatalf("no %s result found on stdin", m[3])
		}
		got := num.NsPerOp / den.NsPerOp
		fmt.Printf("benchguard: %s / %s = %.3f (limit %.3f)\n", m[1], m[3], got, limit)
		if got > limit {
			fmt.Fprintf(os.Stderr, "benchguard: %s exceeds %.3fx of %s\n", m[1], limit, m[3])
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

// ratioSpec parses one -ratio gate: `num<=FACTOR*den`. Bench names
// never contain the `<=`/`*` punctuation, so a lazy split suffices.
var ratioSpec = regexp.MustCompile(`^(.+?)<=([\d.]+)\*(.+)$`)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchguard: "+format+"\n", args...)
	os.Exit(1)
}
