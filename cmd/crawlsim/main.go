// Command crawlsim runs only the measurement-collection stage of the
// reproduction: the simulated user population browses the synthetic web
// with the extension installed, and the tool reports the resulting
// dataset (Table 1) and classification split (Table 2). With -dump it
// also streams a sample of the captured request log as CSV, the schema
// the paper's extension uploaded: user country, first-party domain,
// third-party URL host, serving IP, classification.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"

	"crossborder"
	"crossborder/internal/classify"
)

func main() {
	scale := flag.Float64("scale", 0.1, "population scale (1.0 = the paper's study)")
	seed := flag.Int64("seed", 1, "world seed")
	visits := flag.Int("visits", 0, "mean visits per user (0 = the paper's 219)")
	dump := flag.Int("dump", 0, "emit every Nth captured request as CSV (0 = none)")
	flag.Parse()

	study, err := crossborder.New(context.Background(),
		crossborder.WithSeed(*seed),
		crossborder.WithScale(*scale),
		crossborder.WithVisitsPerUser(*visits))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	s := study.Scenario()

	fmt.Print(study.Table1().Render())
	fmt.Println()
	fmt.Print(study.Table2().Render())

	if *dump > 0 {
		w := bufio.NewWriter(os.Stdout)
		defer w.Flush()
		fmt.Fprintln(w, "user_country,first_party,third_party_fqdn,server_ip,class,https,day")
		s.Dataset.EachRow(func(i int, row classify.Row) {
			if i%*dump != 0 {
				return
			}
			fmt.Fprintf(w, "%s,%s,%s,%s,%s,%t,%d\n",
				s.Dataset.Country(row),
				s.Dataset.Publisher(row).Domain,
				s.Dataset.FQDN(row),
				row.IP,
				row.Class,
				row.HTTPS(),
				row.Day)
		})
	}
}
