// Command crawlsim runs only the measurement-collection stage of the
// reproduction: the simulated user population browses the synthetic web
// with the extension installed, and the tool reports the resulting
// dataset (Table 1) and classification split (Table 2). With -dump it
// also streams a sample of the captured request log as CSV, the schema
// the paper's extension uploaded: user country, first-party domain,
// third-party URL host, serving IP, classification.
//
// With -replay the tool becomes the load generator for the live
// collection daemon: instead of classifying locally, it simulates the
// browsing study, captures the raw event stream, and uploads it to a
// collectd instance (-target) as sequence-numbered batches — the
// paper's crowdsourced upload traffic, benchmarkable end to end:
//
//	crawlsim -scale 0.1 -replay -target http://localhost:8477
//
// -uploaders > 1 fans whole users over concurrent connections for
// throughput testing; with the default single uploader the server
// rebuilds the batch dataset byte for byte. -binary switches NDJSON for
// the compact binary framing. The final partial epoch is flushed unless
// -noflush is set.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"crossborder"
	"crossborder/internal/classify"
	"crossborder/internal/ingest"
	"crossborder/internal/scenario"
)

func main() {
	scale := flag.Float64("scale", 0.1, "population scale (1.0 = the paper's study)")
	seed := flag.Int64("seed", 1, "world seed")
	visits := flag.Int("visits", 0, "mean visits per user (0 = the paper's 219)")
	workers := flag.Int("workers", 0, "simulation workers (0 = GOMAXPROCS)")
	dump := flag.Int("dump", 0, "emit every Nth captured request as CSV (0 = none)")
	replay := flag.Bool("replay", false, "upload the simulated event stream to a collectd instance instead of classifying locally")
	target := flag.String("target", "", "collectd base URL for -replay (e.g. http://localhost:8477)")
	batch := flag.Int("batch", 512, "events per upload batch in -replay")
	uploaders := flag.Int("uploaders", 1, "concurrent upload connections in -replay (1 preserves byte parity)")
	binary := flag.Bool("binary", false, "use the binary upload framing instead of NDJSON in -replay")
	noflush := flag.Bool("noflush", false, "leave the final partial epoch pending after -replay")
	flag.Parse()

	if *replay {
		runReplay(*seed, *scale, *visits, *workers, *target, *batch, *uploaders, *binary, !*noflush)
		return
	}

	study, err := crossborder.New(context.Background(),
		crossborder.WithSeed(*seed),
		crossborder.WithScale(*scale),
		crossborder.WithVisitsPerUser(*visits),
		crossborder.WithWorkers(*workers))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	s := study.Scenario()

	fmt.Print(study.Table1().Render())
	fmt.Println()
	fmt.Print(study.Table2().Render())

	if *dump > 0 {
		w := bufio.NewWriter(os.Stdout)
		defer w.Flush()
		fmt.Fprintln(w, "user_country,first_party,third_party_fqdn,server_ip,class,https,day")
		s.Dataset.EachRow(func(i int, row classify.Row) {
			if i%*dump != 0 {
				return
			}
			fmt.Fprintf(w, "%s,%s,%s,%s,%s,%t,%d\n",
				s.Dataset.Country(row),
				s.Dataset.Publisher(row).Domain,
				s.Dataset.FQDN(row),
				row.IP,
				row.Class,
				row.HTTPS(),
				row.Day)
		})
	}
}

// runReplay simulates the browsing study and uploads the captured event
// stream to a collectd instance, reporting throughput.
func runReplay(seed int64, scale float64, visits, workers int, target string, batch, uploaders int, binary, flush bool) {
	if target == "" {
		fmt.Fprintln(os.Stderr, "crawlsim: -replay requires -target (collectd base URL)")
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "crawlsim: building world and simulating (seed=%d scale=%.2f)...\n", seed, scale)
	world := scenario.BuildWorld(scenario.Params{Seed: seed, Scale: scale, VisitsPerUser: visits, Workers: workers})
	events := ingest.RecordSimulation(world, visits, workers)
	total := 0
	for _, evs := range events {
		total += len(evs)
	}
	fmt.Fprintf(os.Stderr, "crawlsim: captured %d events from %d users; uploading to %s\n",
		total, len(events), target)

	cl := &ingest.Client{Base: target, Binary: binary}
	stats, err := cl.Replay(events, batch, uploaders)
	if err != nil {
		fmt.Fprintln(os.Stderr, "crawlsim:", err)
		os.Exit(1)
	}
	if flush {
		epoch, rows, err := cl.Flush()
		if err != nil {
			fmt.Fprintln(os.Stderr, "crawlsim: flush:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "crawlsim: server at epoch %d, %d rows\n", epoch, rows)
	}
	fmt.Printf("replayed %d events (%d users, %d batches, %d uploaders) in %v: %.0f events/sec\n",
		stats.Events, stats.Users, stats.Batches, uploaders,
		stats.Duration.Round(time.Millisecond), stats.EventsPerSec())
}
