// Command crawlsim runs only the measurement-collection stage of the
// reproduction: the simulated user population browses the synthetic web
// with the extension installed, and the tool reports the resulting
// dataset (Table 1) and classification split (Table 2). With -dump it
// also streams a sample of the captured request log as CSV, the schema
// the paper's extension uploaded: user country, first-party domain,
// third-party URL host, serving IP, classification.
//
// With -replay the tool becomes the load generator for the live
// collection daemon: instead of classifying locally, it simulates the
// browsing study, captures the raw event stream, and uploads it to a
// collectd instance (-target) as sequence-numbered batches — the
// paper's crowdsourced upload traffic, benchmarkable end to end:
//
//	crawlsim -scale 0.1 -replay -target http://localhost:8477
//
// -uploaders > 1 fans whole users over concurrent connections for
// throughput testing; with the default single uploader the server
// rebuilds the batch dataset byte for byte. -binary switches NDJSON for
// the compact binary framing. The final partial epoch is flushed unless
// -noflush is set.
//
// -targets drives a whole cluster instead of one daemon: users route to
// collectors by consistent hash on user id (the same ring the cluster
// package gives clients), one uploader goroutine per shard, and
// -registry lets the client re-resolve a shard's address if it restarts
// elsewhere mid-replay:
//
//	crawlsim -scale 0.1 -replay \
//	    -targets c1=http://h1:8477,c2=http://h2:8477 \
//	    -registry http://merger:8080
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"crossborder"
	"crossborder/internal/classify"
	"crossborder/internal/cluster"
	"crossborder/internal/ingest"
	"crossborder/internal/scenario"
	"crossborder/internal/scenario/pack"
)

func main() {
	scale := flag.Float64("scale", 0.1, "population scale (1.0 = the paper's study)")
	seed := flag.Int64("seed", 1, "world seed")
	visits := flag.Int("visits", 0, "mean visits per user (0 = the paper's 219)")
	workers := flag.Int("workers", 0, "simulation workers (0 = GOMAXPROCS)")
	packName := flag.String("pack", "", "scenario pack to apply to the simulated world (empty or \"default\" = the unmodified study)")
	dump := flag.Int("dump", 0, "emit every Nth captured request as CSV (0 = none)")
	replay := flag.Bool("replay", false, "upload the simulated event stream to a collectd instance instead of classifying locally")
	target := flag.String("target", "", "collectd base URL for -replay (e.g. http://localhost:8477)")
	targets := flag.String("targets", "", "drive a whole cluster in -replay: comma-separated node=url pairs (e.g. c1=http://h1:8477,c2=http://h2:8477); users route to shards by consistent hash")
	registry := flag.String("registry", "", "registry base URL(s) for shard address re-resolution in cluster -replay (e.g. the mergerd address)")
	batch := flag.Int("batch", 512, "events per upload batch in -replay")
	uploaders := flag.Int("uploaders", 1, "concurrent upload connections in -replay (1 preserves byte parity)")
	binary := flag.Bool("binary", false, "use the binary upload framing instead of NDJSON in -replay")
	noflush := flag.Bool("noflush", false, "leave the final partial epoch pending after -replay")
	flag.Parse()

	if *replay {
		if *targets != "" {
			runClusterReplay(*seed, *scale, *visits, *workers, *packName, *targets, *registry, *batch, *binary, !*noflush)
			return
		}
		runReplay(*seed, *scale, *visits, *workers, *packName, *target, *batch, *uploaders, *binary, !*noflush)
		return
	}

	study, err := crossborder.New(context.Background(),
		crossborder.WithSeed(*seed),
		crossborder.WithScale(*scale),
		crossborder.WithVisitsPerUser(*visits),
		crossborder.WithWorkers(*workers),
		crossborder.WithPack(*packName))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	s := study.Scenario()

	fmt.Print(study.Table1().Render())
	fmt.Println()
	fmt.Print(study.Table2().Render())

	if *dump > 0 {
		w := bufio.NewWriter(os.Stdout)
		defer w.Flush()
		fmt.Fprintln(w, "user_country,first_party,third_party_fqdn,server_ip,class,https,day")
		s.Dataset.EachRow(func(i int, row classify.Row) {
			if i%*dump != 0 {
				return
			}
			fmt.Fprintf(w, "%s,%s,%s,%s,%s,%t,%d\n",
				s.Dataset.Country(row),
				s.Dataset.Publisher(row).Domain,
				s.Dataset.FQDN(row),
				row.IP,
				row.Class,
				row.HTTPS(),
				row.Day)
		})
	}
}

// worldParams assembles the replay modes' scenario parameters,
// resolving the named scenario pack (exiting on an unknown name).
func worldParams(seed int64, scale float64, visits, workers int, packName string) scenario.Params {
	params := scenario.Params{Seed: seed, Scale: scale, VisitsPerUser: visits, Workers: workers}
	if packName == "" {
		return params
	}
	params, err := pack.Params(params, packName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "crawlsim:", err)
		os.Exit(2)
	}
	return params
}

// runReplay simulates the browsing study and uploads the captured event
// stream to a collectd instance, reporting throughput.
func runReplay(seed int64, scale float64, visits, workers int, packName, target string, batch, uploaders int, binary, flush bool) {
	if target == "" {
		fmt.Fprintln(os.Stderr, "crawlsim: -replay requires -target (collectd base URL)")
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "crawlsim: building world and simulating (seed=%d scale=%.2f)...\n", seed, scale)
	world := scenario.BuildWorld(worldParams(seed, scale, visits, workers, packName))
	events := ingest.RecordSimulation(world, visits, workers)
	total := 0
	for _, evs := range events {
		total += len(evs)
	}
	fmt.Fprintf(os.Stderr, "crawlsim: captured %d events from %d users; uploading to %s\n",
		total, len(events), target)

	cl := &ingest.Client{Base: target, Binary: binary}
	stats, err := cl.Replay(events, batch, uploaders)
	if err != nil {
		fmt.Fprintln(os.Stderr, "crawlsim:", err)
		os.Exit(1)
	}
	if flush {
		epoch, rows, err := cl.Flush()
		if err != nil {
			fmt.Fprintln(os.Stderr, "crawlsim: flush:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "crawlsim: server at epoch %d, %d rows\n", epoch, rows)
	}
	fmt.Printf("replayed %d events (%d users, %d batches, %d uploaders) in %v: %.0f events/sec\n",
		stats.Events, stats.Users, stats.Batches, uploaders,
		stats.Duration.Round(time.Millisecond), stats.EventsPerSec())
}

// runClusterReplay simulates the browsing study and uploads the
// captured streams across a partitioned cluster: users hash to shards
// on the consistent ring, one uploader per shard, retargeting through
// the registry when a shard moves.
func runClusterReplay(seed int64, scale float64, visits, workers int, packName, targets, registry string, batch int, binary, flush bool) {
	addrs := make(map[string]string)
	var nodes []string
	for _, pair := range strings.Split(targets, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		node, url, ok := strings.Cut(pair, "=")
		if !ok || node == "" || url == "" {
			fmt.Fprintf(os.Stderr, "crawlsim: -targets entry %q is not node=url\n", pair)
			os.Exit(2)
		}
		nodes = append(nodes, node)
		addrs[node] = url
	}
	ring, err := cluster.NewRing(nodes, 0)
	if err != nil {
		fmt.Fprintln(os.Stderr, "crawlsim:", err)
		os.Exit(2)
	}
	var registries []string
	for _, r := range strings.Split(registry, ",") {
		if r = strings.TrimSpace(r); r != "" {
			registries = append(registries, r)
		}
	}

	fmt.Fprintf(os.Stderr, "crawlsim: building world and simulating (seed=%d scale=%.2f)...\n", seed, scale)
	world := scenario.BuildWorld(worldParams(seed, scale, visits, workers, packName))
	events := ingest.RecordSimulation(world, visits, workers)
	total := 0
	for _, evs := range events {
		total += len(evs)
	}
	fmt.Fprintf(os.Stderr, "crawlsim: captured %d events from %d users; uploading across %d shards\n",
		total, len(events), len(nodes))

	cl, err := cluster.NewClient(ring, addrs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "crawlsim:", err)
		os.Exit(2)
	}
	cl.Binary = binary
	cl.Retry = &ingest.RetryPolicy{}
	cl.Registries = registries
	stats, err := cl.Replay(events, batch)
	if err != nil {
		fmt.Fprintln(os.Stderr, "crawlsim:", err)
		os.Exit(1)
	}
	if flush {
		if err := cl.FlushAll(); err != nil {
			fmt.Fprintln(os.Stderr, "crawlsim: flush:", err)
			os.Exit(1)
		}
	}
	fmt.Printf("replayed %d events (%d users, %d batches, %d shards) in %v: %.0f events/sec\n",
		stats.Events, stats.Users, stats.Batches, len(nodes),
		stats.Duration.Round(time.Millisecond), stats.EventsPerSec())
}
