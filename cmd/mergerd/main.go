// Command mergerd is the cluster fan-in tier: it keeps the membership
// registry the collectors heartbeat into, polls every live shard's
// /v1/snapshot export, merges the per-shard states into one global
// copy-on-write snapshot, and serves the full query API over the merged
// view — so a partitioned cluster answers /v1/experiments exactly like
// a single collector over the union of the same events.
//
//	POST /cluster/v1/heartbeat  shard liveness announcements (collectd -registry)
//	POST /cluster/v1/gossip     membership exchange between registries
//	GET  /cluster/v1/members    the membership view (JSON or wire)
//	GET  /v1/experiments        registry ids
//	GET  /v1/experiments/{id}   artifact over the merged snapshot
//	GET  /v1/stats              merged aggregates + store footprint
//	GET  /metrics               Prometheus text: membership, transitions,
//	                            re-merges, projection-scan counters
//	GET  /healthz, /readyz      liveness; readiness = all -shards merged
//
// A shard that dies keeps contributing its last pulled export, so the
// merged view never silently drops a partition; /readyz holds 503 until
// every name in -shards has reported at least once. A shard that keeps
// failing its pulls trips a per-shard circuit breaker (-breaker-fails,
// -breaker-cooldown): the fan-in stops hammering it and probes after
// the cooldown, while its cached export keeps serving. Degradation is
// visible, not silent — /readyz flips its status to "degraded" (still
// 200), /v1/stats carries a per-shard health block, and /metrics
// exposes breaker trips/probes plus stale-shard gauges (-stale-after).
//
// Run a two-collector cluster locally:
//
//	collectd -addr :8481 -node c1 -registry http://localhost:8080
//	collectd -addr :8482 -node c2 -registry http://localhost:8080
//	mergerd  -addr :8080 -shards c1,c2
//	crawlsim -replay -targets c1=http://localhost:8481,c2=http://localhost:8482
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"crossborder/internal/cluster"
	"crossborder/internal/ingest"
	"crossborder/internal/scenario"
)

func main() {
	addr := flag.String("addr", ":8080", "HTTP listen address")
	seed := flag.Int64("seed", 1, "world seed; must match the collectors")
	scale := flag.Float64("scale", 0.25, "population scale; must match the collectors")
	workers := flag.Int("workers", 0, "merge fixpoint workers (0 = GOMAXPROCS)")
	shards := flag.String("shards", "", "comma-separated expected shard names; /readyz waits for all of them (empty = serve whoever reports)")
	poll := flag.Duration("poll", 2*time.Second, "shard snapshot poll cadence")
	suspect := flag.Duration("suspect", 3*time.Second, "heartbeat age after which a shard is suspect")
	dead := flag.Duration("dead", 10*time.Second, "heartbeat age after which a shard is dead")
	breakerFails := flag.Int("breaker-fails", 3, "consecutive pull failures before a shard's circuit opens")
	breakerCooldown := flag.Duration("breaker-cooldown", 10*time.Second, "how long an open circuit skips a shard before probing it")
	staleAfter := flag.Duration("stale-after", 30*time.Second, "age without a fresh pull before a shard's cached export counts as stale")
	readHeaderTimeout := flag.Duration("read-header-timeout", 10*time.Second, "http.Server ReadHeaderTimeout (slowloris guard)")
	idleTimeout := flag.Duration("idle-timeout", 2*time.Minute, "http.Server IdleTimeout for keep-alive connections")
	flag.Parse()

	fmt.Fprintf(os.Stderr, "mergerd: building world (seed=%d scale=%.2f)...\n", *seed, *scale)
	start := time.Now()
	world, err := scenario.BuildWorldContext(context.Background(), scenario.Params{
		Seed: *seed, Scale: *scale, Workers: *workers,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mergerd:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "mergerd: world ready in %v\n", time.Since(start).Round(time.Millisecond))

	var expect []string
	for _, s := range strings.Split(*shards, ",") {
		if s = strings.TrimSpace(s); s != "" {
			expect = append(expect, s)
		}
	}

	reg := cluster.NewRegistry(*suspect, *dead)
	fanin := &cluster.Fanin{
		World:           world,
		Registry:        reg,
		Shards:          expect,
		Workers:         *workers,
		Interval:        *poll,
		BreakerFails:    *breakerFails,
		BreakerCooldown: *breakerCooldown,
		StaleAfter:      *staleAfter,
	}
	fanin.Start()
	defer fanin.Stop()

	qs := ingest.NewQueryServer(fanin.Snapshot, fanin.Ready)
	qs.OnHealth(func() (any, bool) {
		return fanin.Health(), len(fanin.Degraded()) > 0
	})
	mux := http.NewServeMux()
	mux.Handle("/cluster/v1/", reg.Handler())
	mux.Handle("GET /metrics", cluster.MetricsHandler(reg, fanin))
	mux.Handle("/", qs)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: *readHeaderTimeout,
		IdleTimeout:       *idleTimeout,
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "mergerd: serving on %s (shards=%v, poll=%v)\n", *addr, expect, *poll)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
	case err := <-serveErr:
		if err != nil && err != http.ErrServerClosed {
			fmt.Fprintln(os.Stderr, "mergerd:", err)
			os.Exit(1)
		}
	}
	shctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	srv.Shutdown(shctx)
	fmt.Fprintln(os.Stderr, "mergerd: stopped")
}
