package crossborder_test

import (
	"context"
	"net/http/httptest"
	"testing"

	"crossborder"
	"crossborder/internal/cluster"
	"crossborder/internal/ingest"
	"crossborder/internal/scenario"
)

// TestClusterReplayGoldenParity is the end-to-end contract of the
// multi-collector cluster: eight collectd instances each own a
// consistent-hash partition of the users, a registry tracks them via
// heartbeats, the replay routes every upload through the ring-aware
// client, and the fan-in tier merges the per-shard /v1/snapshot
// exports — yet every artifact served from the merged view is
// byte-identical to the batch crossborder.New study over the union of
// the same events (and hence to a single-collector run, which
// TestLiveReplayGoldenParity pins to the same bytes).
func TestClusterReplayGoldenParity(t *testing.T) {
	if testing.Short() {
		t.Skip("full golden cluster replay is not short")
	}
	const (
		seed   = 1
		scale  = 0.05
		visits = 40
		nShard = 8
	)

	study, err := crossborder.New(context.Background(),
		crossborder.WithSeed(seed),
		crossborder.WithScale(scale),
		crossborder.WithVisitsPerUser(visits))
	if err != nil {
		t.Fatal(err)
	}
	want := study.RenderAll()
	ids := crossborder.ExperimentIDs()

	world := scenario.BuildWorld(scenario.Params{Seed: seed, Scale: scale, VisitsPerUser: visits})
	events := ingest.RecordSimulation(world, visits, 3)

	// Eight in-process collectors with deliberately varied configs —
	// epoch cadence, chunk size, compression, worker count all differ
	// per shard, and none of it may leak into the merged artifacts.
	nodes := make([]string, nShard)
	shards := make(map[string]*ingest.Collector, nShard)
	addrs := make(map[string]string, nShard)
	reg := cluster.NewRegistry(0, 0)
	for i := 0; i < nShard; i++ {
		node := string(rune('a'+i)) + "-shard"
		nodes[i] = node
		cfg := ingest.Config{EpochEvents: 977 + 331*i, Workers: 1 + i%3, ChunkRows: 256 << (i % 3)}
		if i%2 == 1 {
			cfg.Compress = true
		}
		c := ingest.NewCollector(world, cfg)
		defer c.Close()
		srv := httptest.NewServer(ingest.NewServer(c))
		defer srv.Close()
		shards[node] = c
		addrs[node] = srv.URL
		reg.Observe(cluster.Heartbeat{Node: node, Addr: srv.URL})
	}
	ring, err := cluster.NewRing(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Replay the captured streams across the cluster: users hash to
	// shards, one uploader per shard.
	cl, err := cluster.NewClient(ring, addrs)
	if err != nil {
		t.Fatal(err)
	}
	cl.Binary = true
	stats, err := cl.Replay(events, 768)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, evs := range events {
		total += len(evs)
	}
	if stats.Events != total {
		t.Fatalf("replay uploaded %d of %d events", stats.Events, total)
	}
	if err := cl.FlushAll(); err != nil {
		t.Fatal(err)
	}

	// Every shard must own at least one user, or the "partitioned"
	// claim is vacuous at this scale.
	for _, node := range nodes {
		if shards[node].Snapshot().Rows() == 0 {
			t.Fatalf("shard %s received no rows; partitioning is degenerate", node)
		}
	}

	// Fan-in: pull + merge all eight exports, then serve the merged
	// snapshot through the same query API a single collector mounts.
	fanin := &cluster.Fanin{World: world, Registry: reg, Shards: nodes, Workers: 2}
	if published, err := fanin.RefreshOnce(); err != nil || !published {
		t.Fatalf("fan-in refresh: published=%v err=%v", published, err)
	}
	if err := fanin.Ready(); err != nil {
		t.Fatal(err)
	}
	qsrv := httptest.NewServer(ingest.NewQueryServer(fanin.Snapshot, fanin.Ready))
	defer qsrv.Close()
	qcl := &ingest.Client{Base: qsrv.URL}

	for i, id := range ids {
		text, _, err := qcl.Artifact(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if text != want[i] {
			t.Errorf("artifact %s differs from the batch study:\n--- cluster ---\n%s\n--- batch ---\n%s",
				id, text, want[i])
		}
	}

	// The merged /v1/stats dataset block equals the batch Table 1.
	st, err := qcl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	batch := study.Table1().Stats
	if st.Stats.Users != batch.Users ||
		st.Stats.FirstPartySites != batch.FirstPartySites ||
		st.Stats.FirstPartyVisits != batch.FirstPartyVisits ||
		st.Stats.ThirdPartyFQDNs != batch.ThirdPartyFQDNs ||
		st.Stats.ThirdPartyReqs != batch.ThirdPartyReqs {
		t.Errorf("merged /v1/stats dataset block %+v, batch Table 1 %+v", st.Stats, batch)
	}
}
