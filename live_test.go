package crossborder_test

import (
	"context"
	"net/http/httptest"
	"testing"

	"crossborder"
	"crossborder/internal/ingest"
	"crossborder/internal/scenario"
)

// TestLiveReplayGoldenParity is the end-to-end contract of the live
// ingestion subsystem: replaying a seed-1 / scale-0.05 simulation
// through collectd's HTTP pipeline — any epoch size, any worker count —
// yields experiment artifacts byte-identical to the batch
// crossborder.New study. The replay exercises the full serving stack:
// wire encoding, upload dedup, epoch commits, the incremental fixpoint
// and aggregates (which seed the snapshot suite's geolocation joins),
// and the query API.
func TestLiveReplayGoldenParity(t *testing.T) {
	if testing.Short() {
		t.Skip("full golden replay is not short")
	}
	const (
		seed   = 1
		scale  = 0.05
		visits = 40
	)

	study, err := crossborder.New(context.Background(),
		crossborder.WithSeed(seed),
		crossborder.WithScale(scale),
		crossborder.WithVisitsPerUser(visits))
	if err != nil {
		t.Fatal(err)
	}
	want := study.RenderAll()
	ids := crossborder.ExperimentIDs()

	world := scenario.BuildWorld(scenario.Params{Seed: seed, Scale: scale, VisitsPerUser: visits})
	events := ingest.RecordSimulation(world, visits, 3)

	for _, cfg := range []ingest.Config{
		{EpochEvents: 1777, Workers: 3, ChunkRows: 512},                 // many epochs, multi-chunk, parallel shards
		{EpochEvents: 1 << 22, Workers: 1},                              // one epoch, sequential
		{EpochEvents: 1777, Workers: 3, ChunkRows: 512, Compress: true}, // compressed-resident live store
	} {
		c := ingest.NewCollector(world, cfg)
		srv := httptest.NewServer(ingest.NewServer(c))
		cl := &ingest.Client{Base: srv.URL, Binary: true}

		if _, err := cl.Replay(events, 768, 1); err != nil {
			t.Fatal(err)
		}
		if _, _, err := cl.Flush(); err != nil {
			t.Fatal(err)
		}

		for i, id := range ids {
			text, _, err := cl.Artifact(id)
			if err != nil {
				t.Fatalf("cfg %+v: %s: %v", cfg, id, err)
			}
			if text != want[i] {
				t.Errorf("cfg %+v: artifact %s differs from the batch study:\n--- live ---\n%s\n--- batch ---\n%s",
					cfg, id, text, want[i])
			}
		}

		// The incremental /v1/stats view must agree with the batch
		// study's Table 1 numbers.
		st, err := cl.Stats()
		if err != nil {
			t.Fatal(err)
		}
		batch := study.Table1().Stats
		if st.Stats.Users != batch.Users ||
			st.Stats.FirstPartySites != batch.FirstPartySites ||
			st.Stats.FirstPartyVisits != batch.FirstPartyVisits ||
			st.Stats.ThirdPartyFQDNs != batch.ThirdPartyFQDNs ||
			st.Stats.ThirdPartyReqs != batch.ThirdPartyReqs {
			t.Errorf("cfg %+v: /v1/stats dataset block %+v, batch Table 1 %+v", cfg, st.Stats, batch)
		}

		srv.Close()
		c.Close()
	}
}
