package crossborder_test

import (
	"context"
	"flag"
	"os"
	"testing"

	"crossborder"
	"crossborder/internal/experiments"
)

var updateExperimentsMD = flag.Bool("update", false, "rewrite EXPERIMENTS.md from the experiment registry")

// legacyRenderAll reproduces the pre-registry RenderAll byte for byte:
// the hand-wired sequential composition over the Suite's typed methods.
// The golden test holds the registry to this output.
func legacyRenderAll(su *experiments.Suite) []string {
	su.Precompute()
	t8 := su.Table8()
	return []string{
		su.Table1().Render(),
		su.Table2().Render(),
		su.Fig2().Render(),
		su.Fig3().Render(),
		su.Fig4().Render(),
		su.Fig5().Render(),
		su.Table3().Render(),
		su.Table4().Render(),
		su.Fig6().Render(),
		su.Fig7().Render(),
		su.Fig8().Render(),
		su.Table5().Render(),
		su.Table6().Render(),
		su.Fig9().Render(),
		su.Fig10().Render(),
		su.Fig11().Render(),
		su.Table7().Render(),
		t8.Render(),
		su.Fig12(t8).Render(),
		experiments.RenderTable9(),
	}
}

// TestGoldenRenderAllMatchesLegacy pins the redesign's contract: for
// seed 1 / scale 0.05, the registry-backed RenderAll is byte-identical
// to the pre-redesign sequential rendering.
func TestGoldenRenderAllMatchesLegacy(t *testing.T) {
	study, err := crossborder.New(context.Background(),
		crossborder.WithSeed(1),
		crossborder.WithScale(0.05),
		crossborder.WithVisitsPerUser(40))
	if err != nil {
		t.Fatal(err)
	}
	want := legacyRenderAll(study.Suite)
	got := study.RenderAll()
	if len(got) != len(want) {
		t.Fatalf("RenderAll returned %d artifacts, legacy rendering has %d", len(got), len(want))
	}
	ids := crossborder.ExperimentIDs()
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("artifact %d (%s) differs from the legacy rendering:\n--- registry ---\n%s\n--- legacy ---\n%s",
				i, ids[i], got[i], want[i])
		}
	}
}

// TestNewCancelled: a dead context must abort New before any work.
func TestNewCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	st, err := crossborder.New(ctx, crossborder.WithScale(0.02))
	if err != context.Canceled {
		t.Fatalf("New on cancelled ctx = %v, want context.Canceled", err)
	}
	if st != nil {
		t.Fatal("cancelled New must return a nil study")
	}
}

// TestNewProgressOption checks the option plumbing end to end: progress
// events arrive through the public API for every pipeline phase.
func TestNewProgressOption(t *testing.T) {
	seen := make(map[crossborder.Phase]bool)
	_, err := crossborder.New(context.Background(),
		crossborder.WithSeed(5),
		crossborder.WithScale(0.02),
		crossborder.WithVisitsPerUser(8),
		crossborder.WithWorkers(2),
		crossborder.WithProgress(func(ev crossborder.PhaseEvent) { seen[ev.Phase] = true }))
	if err != nil {
		t.Fatal(err)
	}
	for _, ph := range crossborder.Phases() {
		if !seen[ph] {
			t.Errorf("no progress event for phase %s", ph)
		}
	}
}

// TestExperimentRegistryExposed covers the public registry surface the
// cmd tools are built on.
func TestExperimentRegistryExposed(t *testing.T) {
	ids := crossborder.ExperimentIDs()
	if len(ids) != 20 {
		t.Fatalf("registry has %d experiments, want 20", len(ids))
	}
	if len(crossborder.Experiments()) != len(ids) {
		t.Fatal("Experiments() and ExperimentIDs() disagree")
	}
	exp, ok := crossborder.LookupExperiment("FIG7")
	if !ok || exp.ID != "fig7" {
		t.Fatalf("LookupExperiment(FIG7) = (%q, %v)", exp.ID, ok)
	}
	if _, ok := crossborder.LookupExperiment("fig99"); ok {
		t.Error("LookupExperiment must reject unknown ids")
	}
}

// TestStudyArtifactAPI runs one registry experiment through the public
// Study surface and checks the encodings exist.
func TestStudyArtifactAPI(t *testing.T) {
	st := tinyStudy(t)
	a, err := st.Artifact(context.Background(), "table1")
	if err != nil {
		t.Fatal(err)
	}
	if a.Render() == "" {
		t.Error("empty render")
	}
	if raw, err := a.JSON(); err != nil || len(raw) == 0 {
		t.Errorf("JSON: %v (%d bytes)", err, len(raw))
	}
	if raw, err := a.CSV(); err != nil || len(raw) == 0 {
		t.Errorf("CSV: %v (%d bytes)", err, len(raw))
	}
}

// TestExperimentsMarkdownInSync keeps EXPERIMENTS.md generated: the
// committed file must match the registry's MarkdownIndex output.
// Regenerate with `go test -run TestExperimentsMarkdownInSync . -update`.
func TestExperimentsMarkdownInSync(t *testing.T) {
	want := experiments.MarkdownIndex()
	if *updateExperimentsMD {
		if err := os.WriteFile("EXPERIMENTS.md", []byte(want), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	got, err := os.ReadFile("EXPERIMENTS.md")
	if err != nil {
		t.Fatalf("EXPERIMENTS.md missing (regenerate with -update): %v", err)
	}
	if string(got) != want {
		t.Error("EXPERIMENTS.md is stale; regenerate with: go test -run TestExperimentsMarkdownInSync . -update")
	}
}
